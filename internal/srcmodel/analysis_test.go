package srcmodel

import "testing"

func TestLoopsNesting(t *testing.T) {
	src := `
void mm(double* a, double* b, double* c) {
    for (int i = 0; i < 8; i++) {
        for (int j = 0; j < 4; j++) {
            double s = 0.0;
            for (int k = 0; k < 16; k++) {
                s += a[i * 16 + k] * b[k * 4 + j];
            }
            c[i * 4 + j] = s;
        }
    }
    while (a[0] > 0.0) {
        a[0] = a[0] - 1.0;
    }
}
`
	p := mustParse(t, src)
	loops := Loops(p.Func("mm"))
	if len(loops) != 4 {
		t.Fatalf("got %d loops, want 4", len(loops))
	}
	type want struct {
		kind      string
		depth     int
		innermost bool
		numIter   int64
		indexVar  string
	}
	wants := []want{
		{"for", 0, false, 8, "i"},
		{"for", 1, false, 4, "j"},
		{"for", 2, true, 16, "k"},
		{"while", 0, true, -1, ""},
	}
	for i, w := range wants {
		li := loops[i]
		if li.Kind != w.kind || li.Depth != w.depth || li.IsInnermost != w.innermost ||
			li.NumIter != w.numIter || li.IndexVar != w.indexVar {
			t.Errorf("loop %d: got kind=%s depth=%d inner=%v n=%d var=%q, want %+v",
				i, li.Kind, li.Depth, li.IsInnermost, li.NumIter, li.IndexVar, w)
		}
	}
}

func TestTripCountShapes(t *testing.T) {
	cases := []struct {
		header string
		want   int64
	}{
		{"for (int i = 0; i < 10; i++)", 10},
		{"for (int i = 0; i <= 10; i++)", 11},
		{"for (int i = 2; i < 10; i += 3)", 3},
		{"for (int i = 10; i > 0; i--)", 10},
		{"for (int i = 10; i >= 0; i -= 2)", 6},
		{"for (i = 0; i < 5; i++)", 5},
		{"for (int i = 0; i < n; i++)", -1},     // symbolic bound
		{"for (int i = 0; i < 10; i += n)", -1}, // symbolic step
		{"for (int i = 5; i < 5; i++)", 0},
	}
	for _, c := range cases {
		src := "void f(int n) { int i; " + c.header + " { g(i); } }"
		p, err := Parse("tc.c", src)
		if err != nil {
			t.Fatalf("%s: %v", c.header, err)
		}
		loops := Loops(p.Func("f"))
		if len(loops) != 1 {
			t.Fatalf("%s: %d loops", c.header, len(loops))
		}
		if loops[0].NumIter != c.want {
			t.Errorf("%s: NumIter=%d, want %d", c.header, loops[0].NumIter, c.want)
		}
	}
}

func TestCalls(t *testing.T) {
	p := mustParse(t, kernelSrc)
	all := Calls(p.Func("main"), "")
	if len(all) != 2 {
		t.Fatalf("got %d calls, want 2: %+v", len(all), all)
	}
	ks := Calls(p.Func("main"), "kernel")
	if len(ks) != 1 || ks[0].Call.Callee != "kernel" {
		t.Fatalf("kernel calls: %+v", ks)
	}
	if len(ks[0].Call.Args) != 2 {
		t.Errorf("kernel call args: %d", len(ks[0].Call.Args))
	}
	if ks[0].Parent == nil || ks[0].Index < 0 {
		t.Errorf("call has no insertion context: %+v", ks[0])
	}
}

func TestCallsNestedInExpressions(t *testing.T) {
	src := `int f(int x) { return g(h(x) + 1) * k(x); }`
	p := mustParse(t, src)
	calls := Calls(p.Func("f"), "")
	names := map[string]bool{}
	for _, c := range calls {
		names[c.Call.Callee] = true
	}
	for _, want := range []string{"g", "h", "k"} {
		if !names[want] {
			t.Errorf("missing call %q (got %v)", want, names)
		}
	}
}

func TestSubstIdent(t *testing.T) {
	src := `void f(int size) { for (int i = 0; i < size; i++) { g(i, size); } size2 = size + 1; }`
	p := mustParse(t, src)
	f := p.Func("f")
	SubstIdent(f.Body, "size", &IntLit{Value: 64})
	FoldConstants(f)
	loops := Loops(f)
	if loops[0].NumIter != 64 {
		t.Errorf("after substitution NumIter=%d, want 64", loops[0].NumIter)
	}
	out := Print(&Program{Funcs: []*FuncDecl{f}})
	if contains := "g(i, 64)"; !containsStr(out, contains) {
		t.Errorf("substituted call not found in:\n%s", out)
	}
}

func TestSubstIdentSkipsAssignTargets(t *testing.T) {
	src := `void f(int x) { x = 1; y = x; }`
	p := mustParse(t, src)
	f := p.Func("f")
	SubstIdent(f.Body, "x", &IntLit{Value: 7})
	out := Print(&Program{Funcs: []*FuncDecl{f}})
	if !containsStr(out, "x = 1") {
		t.Errorf("assignment target was substituted:\n%s", out)
	}
	if !containsStr(out, "y = 7") {
		t.Errorf("read was not substituted:\n%s", out)
	}
}

func TestWritesTo(t *testing.T) {
	cases := []struct {
		src  string
		name string
		want bool
	}{
		{"void f(int x) { x = 1; }", "x", true},
		{"void f(int x) { x++; }", "x", true},
		{"void f(int x) { y = x; }", "x", false},
		{"void f(int x) { a[x] = 1; }", "x", false},
		{"void f(int x) { int x; }", "x", true},
		{"void f(int x) { for (int i = 0; i < x; i++) { x += 1; } }", "x", true},
	}
	for _, c := range cases {
		p := mustParse(t, c.src)
		got := WritesTo(p.Funcs[0].Body, c.name)
		if got != c.want {
			t.Errorf("WritesTo(%q, %q) = %v, want %v", c.src, c.name, got, c.want)
		}
	}
}

func TestNormalizeBodies(t *testing.T) {
	src := `void f(int n) { for (int i = 0; i < n; i++) g(i); if (n > 0) g(n); else g(0); while (n) n--; }`
	p := mustParse(t, src)
	NormalizeBodies(p)
	f := p.Func("f")
	loops := Loops(f)
	for i, li := range loops {
		if _, ok := loopBody(li.Stmt).(*BlockStmt); !ok {
			t.Errorf("loop %d body not a block after normalize", i)
		}
	}
	// Every loop now has a valid replacement context.
	for i, li := range loops {
		if li.Parent == nil || li.Index < 0 {
			t.Errorf("loop %d missing parent context: %+v", i, li)
		}
	}
}

func containsStr(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}
