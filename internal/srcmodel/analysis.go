package srcmodel

import "fmt"

// LoopInfo describes one loop join point inside a function.
type LoopInfo struct {
	Func  *FuncDecl
	Stmt  Stmt   // *ForStmt or *WhileStmt
	Kind  string // "for" or "while"
	Depth int    // 0 for outermost
	// IsInnermost reports that no loop is nested inside this one.
	IsInnermost bool
	// NumIter is the statically determined trip count for canonical
	// `for (i = 0; i < N; i++)`-shaped loops with constant bounds;
	// -1 when unknown.
	NumIter int64
	// IndexVar is the induction variable name for canonical loops.
	IndexVar string
	// Parent points at the statement list owner so the weaver can replace
	// the loop in place.
	Parent *BlockStmt
	// Index is the position of Stmt within Parent.Stmts.
	Index int
}

// CallInfo describes one call join point.
type CallInfo struct {
	Func   *FuncDecl // enclosing function
	Call   *CallExpr
	Parent *BlockStmt // enclosing block (insertion context)
	Index  int        // statement index within Parent
}

// Location renders the call's source location "file:line:col".
func (c *CallInfo) Location(file string) string {
	return fmt.Sprintf("%s:%s", file, c.Call.Pos)
}

// Loops returns all loops in f in source order, with nesting metadata.
func Loops(f *FuncDecl) []*LoopInfo {
	var out []*LoopInfo
	collectLoops(f, f.Body, f.Body, 0, &out)
	// Innermost detection: a loop is innermost if no collected loop's body
	// chain contains another loop. Recompute by checking for nested loops.
	for _, li := range out {
		li.IsInnermost = !containsLoop(loopBody(li.Stmt))
	}
	return out
}

func loopBody(s Stmt) Stmt {
	switch x := s.(type) {
	case *ForStmt:
		return x.Body
	case *WhileStmt:
		return x.Body
	}
	return nil
}

func collectLoops(f *FuncDecl, s Stmt, parent *BlockStmt, depth int, out *[]*LoopInfo) {
	switch x := s.(type) {
	case *BlockStmt:
		for i, st := range x.Stmts {
			switch st.(type) {
			case *ForStmt, *WhileStmt:
				li := describeLoop(f, st, x, i, depth)
				*out = append(*out, li)
				collectLoops(f, loopBody(st), x, depth+1, out)
			default:
				collectLoops(f, st, x, depth, out)
			}
		}
	case *IfStmt:
		collectLoops(f, x.Then, parent, depth, out)
		if x.Else != nil {
			collectLoops(f, x.Else, parent, depth, out)
		}
	case *ForStmt, *WhileStmt:
		// A loop directly as a body (not in a block): wrap metadata without
		// a parent index (cannot be replaced in place, weaver normalizes
		// bodies to blocks first).
		li := describeLoop(f, x, parent, -1, depth)
		*out = append(*out, li)
		collectLoops(f, loopBody(x), parent, depth+1, out)
	}
}

func describeLoop(f *FuncDecl, s Stmt, parent *BlockStmt, idx, depth int) *LoopInfo {
	li := &LoopInfo{Func: f, Stmt: s, Depth: depth, Parent: parent, Index: idx, NumIter: -1}
	switch x := s.(type) {
	case *ForStmt:
		li.Kind = "for"
		li.IndexVar, li.NumIter = canonicalTripCount(x)
	case *WhileStmt:
		li.Kind = "while"
	}
	return li
}

func containsLoop(s Stmt) bool {
	switch x := s.(type) {
	case nil:
		return false
	case *BlockStmt:
		for _, st := range x.Stmts {
			if containsLoop(st) {
				return true
			}
		}
	case *IfStmt:
		return containsLoop(x.Then) || containsLoop(x.Else)
	case *ForStmt, *WhileStmt:
		return true
	}
	return false
}

// canonicalTripCount recognizes `for (i = 0; i < N; i++)` and
// `for (int i = 0; i <= N; i += c)` shapes with integer-literal bounds and
// returns the induction variable and trip count; ("", -1) when the shape
// does not match.
func canonicalTripCount(f *ForStmt) (string, int64) {
	var ivar string
	var start int64
	switch init := f.Init.(type) {
	case *VarDecl:
		lit, ok := init.Init.(*IntLit)
		if !ok {
			return "", -1
		}
		ivar, start = init.Name, lit.Value
	case *ExprStmt:
		asn, ok := init.X.(*AssignExpr)
		if !ok || asn.Op != TokAssign {
			return "", -1
		}
		id, ok := asn.LHS.(*Ident)
		if !ok {
			return "", -1
		}
		lit, ok := asn.RHS.(*IntLit)
		if !ok {
			return "", -1
		}
		ivar, start = id.Name, lit.Value
	default:
		return "", -1
	}

	cond, ok := f.Cond.(*BinaryExpr)
	if !ok {
		return "", -1
	}
	condVar, ok := cond.L.(*Ident)
	if !ok || condVar.Name != ivar {
		return "", -1
	}
	// Symbolic bound: the induction variable is still known even though
	// the trip count is not (weaving and specialization use it).
	bound, boundIsConst := cond.R.(*IntLit)
	if !boundIsConst {
		return ivar, -1
	}

	var step int64
	post, ok := f.Post.(*ExprStmt)
	if !ok {
		return "", -1
	}
	switch px := post.X.(type) {
	case *IncDecExpr:
		id, ok := px.X.(*Ident)
		if !ok || id.Name != ivar {
			return "", -1
		}
		if px.Op == TokInc {
			step = 1
		} else {
			step = -1
		}
	case *AssignExpr:
		id, ok := px.LHS.(*Ident)
		if !ok || id.Name != ivar {
			return "", -1
		}
		lit, ok := px.RHS.(*IntLit)
		if !ok {
			return "", -1
		}
		switch px.Op {
		case TokPlusEq:
			step = lit.Value
		case TokMinusEq:
			step = -lit.Value
		default:
			return "", -1
		}
	default:
		return "", -1
	}
	if step == 0 {
		return "", -1
	}

	limit := bound.Value
	var n int64
	switch cond.Op {
	case TokLt:
		if step <= 0 {
			return "", -1
		}
		if start >= limit {
			return ivar, 0
		}
		n = ceilDiv(limit-start, step)
	case TokLe:
		if step <= 0 {
			return "", -1
		}
		if start > limit {
			return ivar, 0
		}
		n = ceilDiv(limit-start+1, step)
	case TokGt:
		if step >= 0 {
			return "", -1
		}
		if start <= limit {
			return ivar, 0
		}
		n = ceilDiv(start-limit, -step)
	case TokGe:
		if step >= 0 {
			return "", -1
		}
		if start < limit {
			return ivar, 0
		}
		n = ceilDiv(start-limit+1, -step)
	default:
		return "", -1
	}
	return ivar, n
}

func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }

// Calls returns every call expression that appears as a direct expression
// statement or inside one, in source order. callee filters by name when
// non-empty.
func Calls(f *FuncDecl, callee string) []*CallInfo {
	var out []*CallInfo
	collectCalls(f, f.Body, &out)
	if callee == "" {
		return out
	}
	var filtered []*CallInfo
	for _, c := range out {
		if c.Call.Callee == callee {
			filtered = append(filtered, c)
		}
	}
	return filtered
}

func collectCalls(f *FuncDecl, s Stmt, out *[]*CallInfo) {
	switch x := s.(type) {
	case nil:
	case *BlockStmt:
		for i, st := range x.Stmts {
			collectCallsAt(f, st, x, i, out)
		}
	default:
		collectCallsAt(f, s, nil, -1, out)
	}
}

func collectCallsAt(f *FuncDecl, s Stmt, parent *BlockStmt, idx int, out *[]*CallInfo) {
	add := func(e Expr) {
		walkExprCalls(e, func(c *CallExpr) {
			*out = append(*out, &CallInfo{Func: f, Call: c, Parent: parent, Index: idx})
		})
	}
	switch x := s.(type) {
	case nil:
	case *BlockStmt:
		collectCalls(f, x, out)
	case *VarDecl:
		add(x.Init)
	case *IfStmt:
		add(x.Cond)
		collectCallsAt(f, x.Then, parent, idx, out)
		collectCallsAt(f, x.Else, parent, idx, out)
	case *ForStmt:
		collectCallsAt(f, x.Init, parent, idx, out)
		add(x.Cond)
		collectCallsAt(f, x.Post, parent, idx, out)
		collectCallsAt(f, x.Body, parent, idx, out)
	case *WhileStmt:
		add(x.Cond)
		collectCallsAt(f, x.Body, parent, idx, out)
	case *ReturnStmt:
		add(x.Value)
	case *ExprStmt:
		add(x.X)
	}
}

func walkExprCalls(e Expr, fn func(*CallExpr)) {
	switch x := e.(type) {
	case nil:
	case *BinaryExpr:
		walkExprCalls(x.L, fn)
		walkExprCalls(x.R, fn)
	case *UnaryExpr:
		walkExprCalls(x.X, fn)
	case *AssignExpr:
		walkExprCalls(x.LHS, fn)
		walkExprCalls(x.RHS, fn)
	case *IncDecExpr:
		walkExprCalls(x.X, fn)
	case *CallExpr:
		fn(x)
		for _, a := range x.Args {
			walkExprCalls(a, fn)
		}
	case *IndexExpr:
		walkExprCalls(x.Array, fn)
		walkExprCalls(x.Index, fn)
	}
}

// SubstIdent replaces every read of identifier name inside s with a deep
// copy of repl. Assignment targets are left untouched (a specialized
// parameter must not be written to; callers check WritesTo first).
func SubstIdent(s Stmt, name string, repl Expr) {
	substStmt(s, name, repl)
}

func substStmt(s Stmt, name string, repl Expr) {
	switch x := s.(type) {
	case nil:
	case *BlockStmt:
		for _, st := range x.Stmts {
			substStmt(st, name, repl)
		}
	case *VarDecl:
		x.Init = substExpr(x.Init, name, repl)
	case *IfStmt:
		x.Cond = substExpr(x.Cond, name, repl)
		substStmt(x.Then, name, repl)
		substStmt(x.Else, name, repl)
	case *ForStmt:
		substStmt(x.Init, name, repl)
		x.Cond = substExpr(x.Cond, name, repl)
		substStmt(x.Post, name, repl)
		substStmt(x.Body, name, repl)
	case *WhileStmt:
		x.Cond = substExpr(x.Cond, name, repl)
		substStmt(x.Body, name, repl)
	case *ReturnStmt:
		x.Value = substExpr(x.Value, name, repl)
	case *ExprStmt:
		x.X = substExpr(x.X, name, repl)
	}
}

func substExpr(e Expr, name string, repl Expr) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *Ident:
		if x.Name == name {
			return CloneExpr(repl)
		}
		return x
	case *BinaryExpr:
		x.L = substExpr(x.L, name, repl)
		x.R = substExpr(x.R, name, repl)
		return x
	case *UnaryExpr:
		x.X = substExpr(x.X, name, repl)
		return x
	case *AssignExpr:
		// Only the RHS and index parts of the LHS are reads.
		if idx, ok := x.LHS.(*IndexExpr); ok {
			idx.Index = substExpr(idx.Index, name, repl)
			idx.Array = substExpr(idx.Array, name, repl)
		}
		x.RHS = substExpr(x.RHS, name, repl)
		return x
	case *IncDecExpr:
		return x
	case *CallExpr:
		for i, a := range x.Args {
			x.Args[i] = substExpr(a, name, repl)
		}
		return x
	case *IndexExpr:
		x.Array = substExpr(x.Array, name, repl)
		x.Index = substExpr(x.Index, name, repl)
		return x
	}
	return e
}

// WritesTo reports whether s contains an assignment, ++ or -- whose target
// is the plain identifier name.
func WritesTo(s Stmt, name string) bool {
	found := false
	var visitExpr func(e Expr)
	visitExpr = func(e Expr) {
		switch x := e.(type) {
		case nil:
		case *BinaryExpr:
			visitExpr(x.L)
			visitExpr(x.R)
		case *UnaryExpr:
			visitExpr(x.X)
		case *AssignExpr:
			if id, ok := x.LHS.(*Ident); ok && id.Name == name {
				found = true
			}
			visitExpr(x.RHS)
		case *IncDecExpr:
			if id, ok := x.X.(*Ident); ok && id.Name == name {
				found = true
			}
		case *CallExpr:
			for _, a := range x.Args {
				visitExpr(a)
			}
		case *IndexExpr:
			visitExpr(x.Array)
			visitExpr(x.Index)
		}
	}
	var visit func(st Stmt)
	visit = func(st Stmt) {
		switch x := st.(type) {
		case nil:
		case *BlockStmt:
			for _, s2 := range x.Stmts {
				visit(s2)
			}
		case *VarDecl:
			if x.Name == name {
				found = true // shadowing redeclaration counts as a write
			}
			visitExpr(x.Init)
		case *IfStmt:
			visitExpr(x.Cond)
			visit(x.Then)
			visit(x.Else)
		case *ForStmt:
			visit(x.Init)
			visitExpr(x.Cond)
			visit(x.Post)
			visit(x.Body)
		case *WhileStmt:
			visitExpr(x.Cond)
			visit(x.Body)
		case *ReturnStmt:
			visitExpr(x.Value)
		case *ExprStmt:
			visitExpr(x.X)
		}
	}
	visit(s)
	return found
}

// FoldConstants simplifies integer-literal arithmetic and comparisons in
// place throughout the function body. It enables canonicalTripCount to see
// literal bounds after specialization substitutes a constant argument.
func FoldConstants(f *FuncDecl) {
	foldStmt(f.Body)
}

func foldStmt(s Stmt) {
	switch x := s.(type) {
	case nil:
	case *BlockStmt:
		for _, st := range x.Stmts {
			foldStmt(st)
		}
	case *VarDecl:
		x.Init = FoldExpr(x.Init)
	case *IfStmt:
		x.Cond = FoldExpr(x.Cond)
		foldStmt(x.Then)
		foldStmt(x.Else)
	case *ForStmt:
		foldStmt(x.Init)
		x.Cond = FoldExpr(x.Cond)
		foldStmt(x.Post)
		foldStmt(x.Body)
	case *WhileStmt:
		x.Cond = FoldExpr(x.Cond)
		foldStmt(x.Body)
	case *ReturnStmt:
		x.Value = FoldExpr(x.Value)
	case *ExprStmt:
		x.X = FoldExpr(x.X)
	}
}

// FoldExpr returns e with integer constant sub-expressions folded.
func FoldExpr(e Expr) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *BinaryExpr:
		x.L = FoldExpr(x.L)
		x.R = FoldExpr(x.R)
		l, lok := x.L.(*IntLit)
		r, rok := x.R.(*IntLit)
		if !lok || !rok {
			return x
		}
		b2i := func(b bool) int64 {
			if b {
				return 1
			}
			return 0
		}
		var v int64
		switch x.Op {
		case TokPlus:
			v = l.Value + r.Value
		case TokMinus:
			v = l.Value - r.Value
		case TokStar:
			v = l.Value * r.Value
		case TokSlash:
			if r.Value == 0 {
				return x
			}
			v = l.Value / r.Value
		case TokPercent:
			if r.Value == 0 {
				return x
			}
			v = l.Value % r.Value
		case TokEq:
			v = b2i(l.Value == r.Value)
		case TokNe:
			v = b2i(l.Value != r.Value)
		case TokLt:
			v = b2i(l.Value < r.Value)
		case TokLe:
			v = b2i(l.Value <= r.Value)
		case TokGt:
			v = b2i(l.Value > r.Value)
		case TokGe:
			v = b2i(l.Value >= r.Value)
		case TokAndAnd:
			v = b2i(l.Value != 0 && r.Value != 0)
		case TokOrOr:
			v = b2i(l.Value != 0 || r.Value != 0)
		default:
			return x
		}
		return &IntLit{Value: v, Pos: x.Pos}
	case *UnaryExpr:
		x.X = FoldExpr(x.X)
		if lit, ok := x.X.(*IntLit); ok {
			switch x.Op {
			case TokMinus:
				return &IntLit{Value: -lit.Value, Pos: x.Pos}
			case TokNot:
				if lit.Value == 0 {
					return &IntLit{Value: 1, Pos: x.Pos}
				}
				return &IntLit{Value: 0, Pos: x.Pos}
			}
		}
		return x
	case *AssignExpr:
		x.RHS = FoldExpr(x.RHS)
		return x
	case *IncDecExpr:
		return x
	case *CallExpr:
		for i, a := range x.Args {
			x.Args[i] = FoldExpr(a)
		}
		return x
	case *IndexExpr:
		x.Array = FoldExpr(x.Array)
		x.Index = FoldExpr(x.Index)
		return x
	}
	return e
}

// NormalizeBodies rewrites every loop and if body that is a bare statement
// into a single-statement block, so all join points live in a *BlockStmt
// and can be replaced in place by the weaver.
func NormalizeBodies(p *Program) {
	for _, f := range p.Funcs {
		normStmt(f.Body)
	}
}

func normStmt(s Stmt) {
	switch x := s.(type) {
	case nil:
	case *BlockStmt:
		for _, st := range x.Stmts {
			normStmt(st)
		}
	case *IfStmt:
		x.Then = ensureBlock(x.Then)
		normStmt(x.Then)
		if x.Else != nil {
			x.Else = ensureBlock(x.Else)
			normStmt(x.Else)
		}
	case *ForStmt:
		x.Body = ensureBlock(x.Body)
		normStmt(x.Body)
	case *WhileStmt:
		x.Body = ensureBlock(x.Body)
		normStmt(x.Body)
	}
}

func ensureBlock(s Stmt) Stmt {
	if _, ok := s.(*BlockStmt); ok {
		return s
	}
	return &BlockStmt{Stmts: []Stmt{s}, Pos: s.Position()}
}
