package nav

import (
	"container/heap"
	"math"
)

// Route is a computed itinerary.
type Route struct {
	// CostS is the travel time of the found route.
	CostS float64
	// Expanded counts settled nodes — the computational work, which the
	// server's latency model charges for.
	Expanded int
	// Found reports reachability.
	Found bool
}

// Fidelity selects the routing algorithm/quality trade-off — the
// navigation server's main software knob.
type Fidelity int

// Fidelities, most accurate (and expensive) first.
const (
	Exact   Fidelity = iota // full Dijkstra
	AStar                   // A* with admissible free-flow heuristic
	Coarse2                 // A* on a 2x-coarsened graph
	Coarse4                 // A* on a 4x-coarsened graph
)

// String names the fidelity level.
func (f Fidelity) String() string {
	switch f {
	case Exact:
		return "exact"
	case AStar:
		return "astar"
	case Coarse2:
		return "coarse2"
	case Coarse4:
		return "coarse4"
	}
	return "?"
}

// Fidelities lists all levels, most accurate first.
func Fidelities() []Fidelity { return []Fidelity{Exact, AStar, Coarse2, Coarse4} }

// Router answers route queries over a graph at any fidelity, caching the
// coarsened graphs.
type Router struct {
	G       *Graph
	coarse2 *Graph
	coarse4 *Graph
}

// NewRouter builds a router (pre-coarsening the approximations).
func NewRouter(g *Graph) *Router {
	return &Router{G: g, coarse2: g.Coarsen(2), coarse4: g.Coarsen(4)}
}

// Query routes from s to t at the given fidelity.
func (r *Router) Query(s, t int, f Fidelity) Route {
	switch f {
	case Exact:
		return dijkstra(r.G, s, t, nil)
	case AStar:
		return dijkstra(r.G, s, t, heuristic(r.G, t))
	case Coarse2:
		return r.coarseQuery(r.coarse2, 2, s, t)
	case Coarse4:
		return r.coarseQuery(r.coarse4, 4, s, t)
	}
	return Route{}
}

func (r *Router) coarseQuery(cg *Graph, factor, s, t int) Route {
	cs := r.G.MapToCoarse(s, factor)
	ct := r.G.MapToCoarse(t, factor)
	if cs == ct {
		// Same coarse cell: fall back to exact local search (cheap).
		return dijkstra(r.G, s, t, heuristic(r.G, t))
	}
	route := dijkstra(cg, cs, ct, heuristic(cg, ct))
	return route
}

// heuristic returns an admissible lower bound: Manhattan distance times
// the minimum conceivable edge time (30 s at congestion 1).
func heuristic(g *Graph, t int) func(int) float64 {
	tx, ty := g.Coords(t)
	return func(i int) float64 {
		x, y := g.Coords(i)
		return float64(abs(x-tx)+abs(y-ty)) * 30
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// dijkstra runs Dijkstra (h == nil) or A* (h != nil) from s to t.
func dijkstra(g *Graph, s, t int, h func(int) float64) Route {
	n := g.N()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	settled := make([]bool, n)
	dist[s] = 0
	pq := &nodeHeap{}
	heap.Init(pq)
	prio := 0.0
	if h != nil {
		prio = h(s)
	}
	heap.Push(pq, nodeItem{id: s, prio: prio})
	expanded := 0
	for pq.Len() > 0 {
		item := heap.Pop(pq).(nodeItem)
		u := item.id
		if settled[u] {
			continue
		}
		settled[u] = true
		expanded++
		if u == t {
			return Route{CostS: dist[u], Expanded: expanded, Found: true}
		}
		for k := range g.adj[u] {
			v := g.adj[u][k].to
			if settled[v] {
				continue
			}
			nd := dist[u] + g.EdgeCost(u, k)
			if nd < dist[v] {
				dist[v] = nd
				prio := nd
				if h != nil {
					prio += h(v)
				}
				heap.Push(pq, nodeItem{id: v, prio: prio})
			}
		}
	}
	return Route{Expanded: expanded, Found: false}
}

type nodeItem struct {
	id   int
	prio float64
}

type nodeHeap []nodeItem

func (h nodeHeap) Len() int           { return len(h) }
func (h nodeHeap) Less(i, j int) bool { return h[i].prio < h[j].prio }
func (h nodeHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x any)        { *h = append(*h, x.(nodeItem)) }
func (h *nodeHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
