package nav

import (
	"fmt"
	"math"

	"repro/internal/autotune"
	"repro/internal/monitor"
	"repro/internal/runtime"
	"repro/internal/simhpc"
)

// Server is the navigation back end: it serves route requests at a
// configurable fidelity from a finite expansion budget per second, and —
// in adaptive mode — moves the fidelity knob through the adaptation
// kernel's control loop (internal/runtime), trading route quality for
// latency exactly when the request storm demands it. The fidelity
// levels form a runtime.LadderPolicy: each SLA violation steps one rung
// down; sustained headroom raises back.
type Server struct {
	Router *Router
	// Fid is the current fidelity knob setting.
	Fid Fidelity
	// ExpansionRatePerS is the server's compute capacity in node
	// expansions per second.
	ExpansionRatePerS float64
	// LatencySLA is the p95 latency target in seconds.
	LatencySLA float64
	// Adaptive enables the monitor-driven fidelity controller.
	Adaptive bool

	ctl    *runtime.Controller
	ladder *runtime.LadderPolicy
	rng    *simhpc.RNG
	// headroomRun counts consecutive epochs with large latency headroom
	// (used to raise fidelity back).
	headroomRun int
	// Adaptations counts knob moves.
	Adaptations int
}

// NewServer builds a server over g with the given capacity and SLA.
func NewServer(g *Graph, expansionRate, latencySLA float64, seed uint64) *Server {
	s := &Server{
		Router:            NewRouter(g),
		Fid:               Exact,
		ExpansionRatePerS: expansionRate,
		LatencySLA:        latencySLA,
		rng:               simhpc.NewRNG(seed),
	}
	rungs := make([]float64, len(Fidelities()))
	for i, f := range Fidelities() {
		rungs[i] = float64(f)
	}
	s.ladder = &runtime.LadderPolicy{Knob: "fidelity", Rungs: rungs}
	s.ctl = runtime.NewController(s.spec())
	return s
}

// spec declares the server's control loop: p95-latency SLA,
// fidelity-ladder policy, fidelity knob. The server pushes its
// per-request latencies straight into its own controller's windows
// (no separate Sensor), so the spec is only valid for that internal
// controller — it is not exported for Kernel.Attach, which would
// build a second controller that never sees the latency stream.
func (s *Server) spec() runtime.AppSpec {
	return runtime.AppSpec{
		Name: "nav",
		SLA: monitor.SLA{Name: "nav", Goals: []monitor.Goal{
			{Metric: monitor.MetricLatency, Stat: "p95", Relation: monitor.AtMost, Target: s.LatencySLA},
		}},
		Window:   64,
		Debounce: 2,
		Policy:   s.ladder,
		Knob:     runtime.KnobFunc(s.applyFidelity),
	}
}

// applyFidelity is the act stage: move the fidelity knob.
func (s *Server) applyFidelity(cfg autotune.Config) {
	s.Fid = Fidelity(int(cfg["fidelity"]))
	s.Adaptations++
}

func (s *Server) raiseFidelity() {
	if cfg, ok := s.ladder.Raise(); ok {
		s.applyFidelity(cfg)
	}
}

// EpochStats summarizes one served epoch.
type EpochStats struct {
	TimeS       float64
	Lambda      float64 // offered request rate (req/s)
	Fid         Fidelity
	MeanLatency float64
	P95Latency  float64
	Quality     float64 // mean route quality vs exact in [0,1]
	Violated    bool
	Utilization float64
}

// String renders the epoch row.
func (e EpochStats) String() string {
	return fmt.Sprintf("t=%6.0fs λ=%5.1f/s fid=%-7s lat(mean)=%6.3fs p95=%6.3fs q=%.3f util=%4.0f%% viol=%v",
		e.TimeS, e.Lambda, e.Fid, e.MeanLatency, e.P95Latency, e.Quality, e.Utilization*100, e.Violated)
}

// RunEpoch serves one epoch at simulated time t with offered load lambda
// (requests/second), sampling nSample queries to estimate cost and
// quality. Latency follows an M/D/1-style queueing model on the
// expansion budget; overload saturates instead of diverging.
func (s *Server) RunEpoch(t, lambda float64, nSample int) EpochStats {
	g := s.Router.G
	var totalExp float64
	var quality float64
	qSamples := 0
	var latencies []float64
	for i := 0; i < nSample; i++ {
		from := s.rng.Intn(g.N())
		to := s.rng.Intn(g.N())
		route := s.Router.Query(from, to, s.Fid)
		totalExp += float64(route.Expanded)
		// Quality against exact ground truth on a subsample (expensive).
		if i < nSample/4 {
			exact := s.Router.Query(from, to, Exact)
			if exact.Found && exact.CostS > 0 && route.Found {
				relErr := math.Abs(route.CostS-exact.CostS) / exact.CostS
				quality += 1 / (1 + relErr)
			} else if route.Found == exact.Found {
				quality += 1
			}
			qSamples++
		}
	}
	meanExp := totalExp / float64(nSample)
	service := meanExp / s.ExpansionRatePerS
	rho := lambda * service
	var meanLat float64
	switch {
	case rho < 0.98:
		// M/D/1 mean wait: ρ·S / (2(1-ρ)).
		meanLat = service + rho*service/(2*(1-rho))
	default:
		// Saturated: latency grows with the backlog accumulated over the
		// epoch; cap to keep numbers finite.
		meanLat = service * 50 * rho
	}
	// Per-request jitter around the queueing mean feeds the p95 monitor.
	for i := 0; i < nSample; i++ {
		jitter := s.rng.LogNormal(0, 0.35)
		lat := meanLat * jitter
		latencies = append(latencies, lat)
		s.ctl.Push(monitor.MetricLatency, lat)
	}
	stats := EpochStats{
		TimeS:       t,
		Lambda:      lambda,
		Fid:         s.Fid,
		MeanLatency: meanLat,
		Quality:     quality / math.Max(1, float64(qSamples)),
		Utilization: math.Min(rho, 1),
	}
	w := monitor.NewWindow(len(latencies))
	for _, l := range latencies {
		w.Push(l)
	}
	stats.P95Latency = w.Percentile(95)
	stats.Violated = stats.P95Latency > s.LatencySLA

	if s.Adaptive {
		s.ctl.Tick()
		// Raise fidelity back when sustained headroom appears.
		if stats.P95Latency < s.LatencySLA/3 && rho < 0.4 {
			s.headroomRun++
			if s.headroomRun >= 3 {
				s.raiseFidelity()
				s.headroomRun = 0
			}
		} else {
			s.headroomRun = 0
		}
	}
	return stats
}

// StormProfile returns the offered load at time t: a base rate with a
// storm surge between tStart and tEnd (the §VII-b "variable workload").
func StormProfile(base, peak, tStart, tEnd float64) func(t float64) float64 {
	return func(t float64) float64 {
		if t >= tStart && t < tEnd {
			// Ramp up and down within the storm window.
			mid := (tStart + tEnd) / 2
			half := (tEnd - tStart) / 2
			frac := 1 - math.Abs(t-mid)/half
			return base + (peak-base)*frac
		}
		return base
	}
}

// Campaign runs epochs over a storm and returns the stats series —
// the data behind the fixed-vs-adaptive comparison.
func Campaign(server *Server, epochs int, epochLen float64, load func(float64) float64, nSample int) []EpochStats {
	var out []EpochStats
	for i := 0; i < epochs; i++ {
		t := float64(i) * epochLen
		server.Router.G.SetTraffic(t, nil)
		out = append(out, server.RunEpoch(t, load(t), nSample))
	}
	return out
}

// Violations counts SLA-violating epochs.
func Violations(stats []EpochStats) int {
	n := 0
	for _, s := range stats {
		if s.Violated {
			n++
		}
	}
	return n
}

// MeanQuality averages route quality over the series.
func MeanQuality(stats []EpochStats) float64 {
	if len(stats) == 0 {
		return 0
	}
	var q float64
	for _, s := range stats {
		q += s.Quality
	}
	return q / float64(len(stats))
}
