// Package nav implements ANTAREX use case 2 (paper §VII-b): the
// server-side of a self-adaptive navigation system for smart cities. A
// synthetic city road network with time-dependent congestion serves
// route requests; the routing fidelity (exact Dijkstra, A*, or a
// coarsened approximate search) is a software knob the autotuner moves
// to hold the latency SLA under a variable request load — "the efficient
// operation of such a system depends strongly on balancing data
// collection, big data analysis and extreme computational power".
package nav

import (
	"fmt"
	"math"

	"repro/internal/simhpc"
)

// Graph is a grid road network. Nodes are grid cells (row-major); edges
// connect 4-neighbors with per-edge free-flow travel times and a
// time-dependent congestion multiplier per district.
type Graph struct {
	W, H int
	// freeFlow[i][k] is the free-flow seconds of edge k of node i
	// (k indexes the adjacency list).
	adj      [][]edge
	district []int // node -> district index
	nd       int   // number of districts per axis
	// Congestion state per district (multiplier >= 1).
	Congestion []float64
}

type edge struct {
	to       int
	freeFlow float64
}

// NewGraph builds a w×h grid with deterministic per-edge free-flow times
// in [30,90] seconds and nd×nd districts.
func NewGraph(w, h, nd int, seed uint64) *Graph {
	rng := simhpc.NewRNG(seed)
	g := &Graph{W: w, H: h, nd: nd}
	n := w * h
	g.adj = make([][]edge, n)
	g.district = make([]int, n)
	g.Congestion = make([]float64, nd*nd)
	for i := range g.Congestion {
		g.Congestion[i] = 1
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := y*w + x
			dx := x * nd / w
			dy := y * nd / h
			g.district[i] = dy*nd + dx
			add := func(j int) {
				g.adj[i] = append(g.adj[i], edge{to: j, freeFlow: rng.Uniform(30, 90)})
			}
			if x+1 < w {
				add(i + 1)
			}
			if x > 0 {
				add(i - 1)
			}
			if y+1 < h {
				add(i + w)
			}
			if y > 0 {
				add(i - w)
			}
		}
	}
	return g
}

// N returns the node count.
func (g *Graph) N() int { return g.W * g.H }

// EdgeCost returns the current travel time of edge k out of node i.
func (g *Graph) EdgeCost(i, k int) float64 {
	e := g.adj[i][k]
	return e.freeFlow * g.Congestion[g.district[i]]
}

// SetTraffic updates district congestion from a diurnal pattern plus
// localized incidents: t is simulated seconds; incidents inject sharp
// multipliers into specific districts.
func (g *Graph) SetTraffic(t float64, incidents map[int]float64) {
	// Diurnal double-peak profile with period 24h (86400 s).
	phase := 2 * math.Pi * t / 86400
	base := 1 + 0.5*(math.Sin(phase-math.Pi/2)+1)/2 + 0.3*math.Max(0, math.Sin(2*phase))
	for d := range g.Congestion {
		g.Congestion[d] = base * (1 + 0.1*float64(d%3))
		if m, ok := incidents[d]; ok {
			g.Congestion[d] *= m
		}
	}
}

// Coarsen returns a graph at 1/factor resolution, used by the
// approximate routing fidelity: route on the coarse graph, then scale.
// Node (x,y) maps to coarse node (x/factor, y/factor).
func (g *Graph) Coarsen(factor int) *Graph {
	cw := (g.W + factor - 1) / factor
	ch := (g.H + factor - 1) / factor
	c := &Graph{W: cw, H: ch, nd: g.nd}
	c.adj = make([][]edge, cw*ch)
	c.district = make([]int, cw*ch)
	c.Congestion = g.Congestion // shared view: coarse routing sees live traffic
	for y := 0; y < ch; y++ {
		for x := 0; x < cw; x++ {
			i := y*cw + x
			fx := x * factor
			fy := y * factor
			if fx >= g.W {
				fx = g.W - 1
			}
			if fy >= g.H {
				fy = g.H - 1
			}
			c.district[i] = g.district[fy*g.W+fx]
			add := func(j int, cost float64) {
				c.adj[i] = append(c.adj[i], edge{to: j, freeFlow: cost})
			}
			// Coarse edges approximate factor fine edges.
			avg := 60.0 * float64(factor)
			if x+1 < cw {
				add(i+1, avg)
			}
			if x > 0 {
				add(i-1, avg)
			}
			if y+1 < ch {
				add(i+cw, avg)
			}
			if y > 0 {
				add(i-cw, avg)
			}
		}
	}
	return c
}

// MapToCoarse converts a fine node id to the coarse id.
func (g *Graph) MapToCoarse(fine, factor int) int {
	x := (fine % g.W) / factor
	y := (fine / g.W) / factor
	cw := (g.W + factor - 1) / factor
	ch := (g.H + factor - 1) / factor
	if x >= cw {
		x = cw - 1
	}
	if y >= ch {
		y = ch - 1
	}
	return y*cw + x
}

// Coords returns the (x,y) of node i.
func (g *Graph) Coords(i int) (int, int) { return i % g.W, i / g.W }

// Validate checks structural invariants.
func (g *Graph) Validate() error {
	for i, edges := range g.adj {
		for _, e := range edges {
			if e.to < 0 || e.to >= g.N() {
				return fmt.Errorf("nav: node %d has edge to %d out of range", i, e.to)
			}
			if e.freeFlow <= 0 {
				return fmt.Errorf("nav: non-positive edge cost at node %d", i)
			}
		}
	}
	return nil
}
