package nav

import (
	"math"
	"testing"

	"repro/internal/simhpc"
)

func testGraph() *Graph { return NewGraph(24, 24, 3, 7) }

func TestGraphStructure(t *testing.T) {
	g := testGraph()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N() != 576 {
		t.Errorf("N = %d", g.N())
	}
	// Interior node has 4 neighbors, corner has 2.
	if len(g.adj[g.W+1]) != 4 {
		t.Errorf("interior degree %d", len(g.adj[g.W+1]))
	}
	if len(g.adj[0]) != 2 {
		t.Errorf("corner degree %d", len(g.adj[0]))
	}
	x, y := g.Coords(g.W*3 + 5)
	if x != 5 || y != 3 {
		t.Errorf("coords: %d,%d", x, y)
	}
}

func TestTrafficModel(t *testing.T) {
	g := testGraph()
	g.SetTraffic(0, nil)
	base := append([]float64(nil), g.Congestion...)
	for _, c := range base {
		if c < 1 {
			t.Errorf("congestion below free flow: %v", c)
		}
	}
	// Rush hour (8h = 28800s) is worse than 3am (10800s).
	g.SetTraffic(28800, nil)
	rush := g.Congestion[0]
	g.SetTraffic(10800, nil)
	night := g.Congestion[0]
	if rush <= night {
		t.Errorf("rush %.2f should exceed night %.2f", rush, night)
	}
	// Incidents multiply locally.
	g.SetTraffic(0, map[int]float64{2: 3.0})
	g2 := testGraph()
	g2.SetTraffic(0, nil)
	if g.Congestion[2] <= g2.Congestion[2]*2 {
		t.Errorf("incident not applied: %v vs %v", g.Congestion[2], g2.Congestion[2])
	}
}

func TestDijkstraOptimalAndAStarAgrees(t *testing.T) {
	g := testGraph()
	g.SetTraffic(0, nil)
	r := NewRouter(g)
	rng := simhpc.NewRNG(3)
	for i := 0; i < 25; i++ {
		s := rng.Intn(g.N())
		d := rng.Intn(g.N())
		exact := r.Query(s, d, Exact)
		astar := r.Query(s, d, AStar)
		if !exact.Found || !astar.Found {
			t.Fatalf("route %d->%d not found", s, d)
		}
		if math.Abs(exact.CostS-astar.CostS) > 1e-9 {
			t.Errorf("A* cost %.3f != Dijkstra %.3f for %d->%d", astar.CostS, exact.CostS, s, d)
		}
		if astar.Expanded > exact.Expanded {
			t.Errorf("A* expanded %d > Dijkstra %d", astar.Expanded, exact.Expanded)
		}
	}
}

func TestCoarseFidelityCheaperButApproximate(t *testing.T) {
	g := testGraph()
	g.SetTraffic(0, nil)
	r := NewRouter(g)
	rng := simhpc.NewRNG(5)
	var exactExp, c4Exp, relErrSum float64
	n := 30
	for i := 0; i < n; i++ {
		s := rng.Intn(g.N())
		d := rng.Intn(g.N())
		exact := r.Query(s, d, Exact)
		c4 := r.Query(s, d, Coarse4)
		exactExp += float64(exact.Expanded)
		c4Exp += float64(c4.Expanded)
		if exact.Found && exact.CostS > 0 && c4.Found {
			relErrSum += math.Abs(c4.CostS-exact.CostS) / exact.CostS
		}
	}
	if c4Exp >= exactExp/2 {
		t.Errorf("coarse4 expansions %.0f should be far below exact %.0f", c4Exp, exactExp)
	}
	meanErr := relErrSum / float64(n)
	if meanErr == 0 {
		t.Error("coarse route should be approximate (some error expected)")
	}
	if meanErr > 1.0 {
		t.Errorf("coarse route error %.2f unreasonably large", meanErr)
	}
}

func TestSameCellCoarseFallsBack(t *testing.T) {
	g := testGraph()
	r := NewRouter(g)
	// Two adjacent nodes: same coarse-4 cell, must still route exactly.
	route := r.Query(0, 1, Coarse4)
	if !route.Found || route.CostS <= 0 {
		t.Errorf("fallback route: %+v", route)
	}
}

func TestStormProfile(t *testing.T) {
	load := StormProfile(10, 100, 1000, 2000)
	if load(0) != 10 || load(5000) != 10 {
		t.Error("base rate wrong")
	}
	if peak := load(1500); math.Abs(peak-100) > 1e-9 {
		t.Errorf("peak: %v", peak)
	}
	if mid := load(1250); mid <= 10 || mid >= 100 {
		t.Errorf("ramp: %v", mid)
	}
}

// TestAdaptiveBeatsFixedUnderStorm is the use-case-2 claim: under a
// request storm, the self-adaptive server holds its latency SLA by
// dropping fidelity, while the fixed server racks up violations.
func TestAdaptiveBeatsFixedUnderStorm(t *testing.T) {
	load := StormProfile(2, 60, 600, 2400)
	mk := func(adaptive bool) *Server {
		g := NewGraph(24, 24, 3, 7)
		s := NewServer(g, 3000, 0.5, 99)
		s.Adaptive = adaptive
		return s
	}
	fixed := Campaign(mk(false), 50, 60, load, 40)
	adaptive := Campaign(mk(true), 50, 60, load, 40)

	vFixed, vAdaptive := Violations(fixed), Violations(adaptive)
	if vAdaptive >= vFixed {
		t.Errorf("adaptive violations %d should be below fixed %d", vAdaptive, vFixed)
	}
	// Quality cost of adaptation is bounded: adaptive still ≥ 70 % mean
	// quality, fixed is exact (≈1.0).
	qFixed, qAdaptive := MeanQuality(fixed), MeanQuality(adaptive)
	if qFixed < 0.99 {
		t.Errorf("fixed quality %.3f should be ~1", qFixed)
	}
	if qAdaptive < 0.70 {
		t.Errorf("adaptive quality %.3f collapsed", qAdaptive)
	}
	// The adaptive server actually moved the knob, and recovered after
	// the storm (fidelity raised back toward exact).
	sAd := mk(true)
	stats := Campaign(sAd, 50, 60, load, 40)
	if sAd.Adaptations == 0 {
		t.Error("adaptive server never adapted")
	}
	last := stats[len(stats)-1]
	if last.Fid == Coarse4 {
		t.Errorf("fidelity should recover after the storm, still %s", last.Fid)
	}
}

func TestEpochStatsRender(t *testing.T) {
	g := testGraph()
	s := NewServer(g, 50000, 0.5, 1)
	st := s.RunEpoch(0, 5, 20)
	if st.String() == "" || st.Fid != Exact {
		t.Errorf("stats: %+v", st)
	}
	if st.Quality < 0.99 {
		t.Errorf("exact fidelity quality %.3f should be ~1", st.Quality)
	}
}
