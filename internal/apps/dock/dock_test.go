package dock

import (
	"testing"

	"repro/internal/rtrm"
	"repro/internal/simhpc"
)

func devices(n int, seed uint64) []*simhpc.Device {
	rng := simhpc.NewRNG(seed)
	var ds []*simhpc.Device
	for i := 0; i < n; i++ {
		ds = append(ds, simhpc.NewDevice(simhpc.XeonCPUSpec(), "d", 0, rng))
	}
	return ds
}

func heavyTasks(n int, seed uint64) []*simhpc.Task {
	gen := simhpc.NewWorkloadGen(seed)
	return gen.DockingBatch(n, 1.4, 5).Tasks
}

func totalGFlop(tasks []*simhpc.Task) float64 {
	var s float64
	for _, t := range tasks {
		s += t.GFlop
	}
	return s
}

func TestAllSchedulersCompleteAllWork(t *testing.T) {
	tasks := heavyTasks(200, 3)
	// All workers share the same spec with no variability, so total busy
	// time must equal the sum of per-task execution times regardless of
	// which worker ran which task — a conservation check that no task is
	// lost or run twice.
	ref := devices(1, 7)[0]
	var wantBusy float64
	for _, task := range tasks {
		wantBusy += ref.ExecTime(task, ref.Spec.MaxPState())
	}
	for _, s := range []Scheduler{StaticPartition{}, DynamicQueue{}, WorkStealing{}} {
		ds := devices(8, 7)
		res := s.Run(ds, append([]*simhpc.Task(nil), tasks...))
		if res.MakespanS <= 0 {
			t.Errorf("%s: makespan %v", s.Name(), res.MakespanS)
		}
		var busy float64
		for _, b := range res.PerWorkerBusy {
			busy += b
		}
		if diff := busy - wantBusy; diff > 1e-6*wantBusy || diff < -1e-6*wantBusy {
			t.Errorf("%s: total busy %.4f, want %.4f (work lost or duplicated)", s.Name(), busy, wantBusy)
		}
		if res.EnergyJ <= 0 {
			t.Errorf("%s: no energy accounted", s.Name())
		}
	}
}

// TestDynamicBeatsStaticUnderHeavyTails is the §VII-a claim: with
// Pareto-distributed ligand costs, dynamic balancing dominates static
// partitioning on makespan and imbalance.
func TestDynamicBeatsStaticUnderHeavyTails(t *testing.T) {
	tasks := heavyTasks(400, 11)
	static := StaticPartition{}.Run(devices(8, 5), append([]*simhpc.Task(nil), tasks...))
	dynamic := DynamicQueue{}.Run(devices(8, 5), append([]*simhpc.Task(nil), tasks...))
	stealing := WorkStealing{}.Run(devices(8, 5), append([]*simhpc.Task(nil), tasks...))

	if dynamic.MakespanS >= static.MakespanS {
		t.Errorf("dynamic makespan %.1f should beat static %.1f", dynamic.MakespanS, static.MakespanS)
	}
	if stealing.MakespanS >= static.MakespanS {
		t.Errorf("stealing makespan %.1f should beat static %.1f", stealing.MakespanS, static.MakespanS)
	}
	if dynamic.Imbalance >= static.Imbalance {
		t.Errorf("dynamic imbalance %.2f should beat static %.2f", dynamic.Imbalance, static.Imbalance)
	}
	if stealing.Steals == 0 {
		t.Error("stealing run recorded no steals")
	}
	if static.Utilization() >= dynamic.Utilization() {
		t.Errorf("dynamic utilization %.2f should beat static %.2f",
			dynamic.Utilization(), static.Utilization())
	}
}

// Uniform tasks: the three schedulers are nearly equivalent (sanity that
// the dynamic win really comes from the tail).
func TestUniformTasksNearEquivalent(t *testing.T) {
	gen := simhpc.NewWorkloadGen(17)
	var tasks []*simhpc.Task
	for i := 0; i < 400; i++ {
		tasks = append(tasks, gen.Balanced(10))
	}
	static := StaticPartition{}.Run(devices(8, 5), append([]*simhpc.Task(nil), tasks...))
	dynamic := DynamicQueue{}.Run(devices(8, 5), append([]*simhpc.Task(nil), tasks...))
	ratio := static.MakespanS / dynamic.MakespanS
	if ratio > 1.25 {
		t.Errorf("uniform tasks: static/dynamic makespan ratio %.2f should be near 1", ratio)
	}
}

func TestCampaignRowsAndDeterminism(t *testing.T) {
	r1 := Campaign(8, 300, 1.4, 42)
	r2 := Campaign(8, 300, 1.4, 42)
	if len(r1) != 3 {
		t.Fatalf("rows: %d", len(r1))
	}
	for i := range r1 {
		if r1[i].MakespanS != r2[i].MakespanS || r1[i].EnergyJ != r2[i].EnergyJ {
			t.Errorf("campaign not deterministic: %+v vs %+v", r1[i], r2[i])
		}
		if r1[i].String() == "" {
			t.Error("empty row render")
		}
	}
	SortByMakespan(r1)
	if r1[0].MakespanS > r1[2].MakespanS {
		t.Error("sort broken")
	}
	// Static should be the worst under heavy tails.
	if r1[2].Scheduler != "static" {
		t.Errorf("worst scheduler %q, want static (rows: %v)", r1[2].Scheduler, r1)
	}
}

func TestHeterogeneousPoolFinishes(t *testing.T) {
	rows := Campaign(6, 120, 1.6, 9)
	for _, r := range rows {
		if r.MakespanS <= 0 || r.Utilization() <= 0 || r.Utilization() > 1.0001 {
			t.Errorf("%s: implausible result %+v", r.Scheduler, r)
		}
	}
}

// TestDockingUnderOptimalGovernor crosses use case 1 with the RTRM
// governor claim: running the docking batch at the per-task optimal
// operating point (with a slowdown bound) saves energy over the default
// max-frequency execution the schedulers use.
func TestDockingUnderOptimalGovernor(t *testing.T) {
	tasks := heavyTasks(200, 31)
	// Baseline: energy at max frequency (what Run uses).
	ref := devices(1, 7)[0]
	var eMax, eOpt, tMax, tOpt float64
	gov := &rtrm.OptimalGovernor{MaxSlowdown: 1.3}
	for _, task := range tasks {
		top := ref.Spec.MaxPState()
		eMax += ref.ExecEnergy(task, top)
		tMax += ref.ExecTime(task, top)
		ps := gov.PickPState(ref, task)
		eOpt += ref.ExecEnergy(task, ps)
		tOpt += ref.ExecTime(task, ps)
	}
	saving := 1 - eOpt/eMax
	if saving <= 0.05 {
		t.Errorf("optimal governor on docking batch saves only %.1f%%", saving*100)
	}
	if tOpt > tMax*1.3*1.001 {
		t.Errorf("slowdown bound violated: %.2fx", tOpt/tMax)
	}
}
