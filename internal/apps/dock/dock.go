// Package dock implements ANTAREX use case 1 (paper §VII-a): computer-
// accelerated drug discovery. Docking a ligand library is massively
// parallel but "demonstrates unpredictable imbalances in the
// computational time, since the verification of each point in the
// solution space requires a widely varying time" — modeled here as
// Pareto-distributed per-ligand cost. The package provides three task
// schedulers (static partition, dynamic central queue, work stealing)
// over the simulated heterogeneous cluster, so the dynamic-load-balancing
// claim can be quantified: under heavy-tailed costs, dynamic policies
// dominate static partitioning on makespan and device utilization.
package dock

import (
	"fmt"
	"sort"

	"repro/internal/simhpc"
)

// Result aggregates one scheduled docking run.
type Result struct {
	Scheduler string
	// MakespanS is the completion time of the last task.
	MakespanS float64
	// Imbalance is max worker busy-time over mean busy-time (1.0 = perfect).
	Imbalance float64
	// EnergyJ is total energy across workers including idle tails.
	EnergyJ float64
	// Steals counts work-stealing events (0 for other policies).
	Steals int
	// PerWorkerBusy is each worker's busy seconds.
	PerWorkerBusy []float64
}

// Utilization returns mean busy time / makespan (1.0 = no idle).
func (r Result) Utilization() float64 {
	if r.MakespanS == 0 || len(r.PerWorkerBusy) == 0 {
		return 0
	}
	var sum float64
	for _, b := range r.PerWorkerBusy {
		sum += b
	}
	return sum / float64(len(r.PerWorkerBusy)) / r.MakespanS
}

// String renders the result row.
func (r Result) String() string {
	return fmt.Sprintf("%-12s makespan=%8.2fs imbalance=%5.2f util=%5.1f%% energy=%9.0fJ steals=%d",
		r.Scheduler, r.MakespanS, r.Imbalance, r.Utilization()*100, r.EnergyJ, r.Steals)
}

// Scheduler runs a docking batch over a set of worker devices.
type Scheduler interface {
	Name() string
	Run(devices []*simhpc.Device, tasks []*simhpc.Task) Result
}

// worker wraps a device with a queue and clock for the event-driven run.
type worker struct {
	dev   *simhpc.Device
	queue []*simhpc.Task
	busy  float64
	done  float64 // time the worker went idle
}

func (w *worker) pop() *simhpc.Task {
	if len(w.queue) == 0 {
		return nil
	}
	t := w.queue[0]
	w.queue = w.queue[1:]
	return t
}

// finish computes result fields common to all schedulers.
func finish(name string, workers []*worker, steals int) Result {
	res := Result{Scheduler: name, Steals: steals}
	var sum float64
	for _, w := range workers {
		res.PerWorkerBusy = append(res.PerWorkerBusy, w.busy)
		sum += w.busy
		if w.done > res.MakespanS {
			res.MakespanS = w.done
		}
	}
	mean := sum / float64(len(workers))
	for _, w := range workers {
		if mean > 0 && w.busy/mean > res.Imbalance {
			res.Imbalance = w.busy / mean
		}
	}
	// Idle tail: workers that finished early burn static power until the
	// makespan, then sum total energy.
	for _, w := range workers {
		w.dev.AccountIdle(res.MakespanS - w.done)
	}
	for _, w := range workers {
		res.EnergyJ += w.dev.EnergyJoules
	}
	return res
}

// StaticPartition pre-assigns tasks round-robin by index — the
// oblivious baseline that heavy tails punish.
type StaticPartition struct{}

// Name implements Scheduler.
func (StaticPartition) Name() string { return "static" }

// Run implements Scheduler.
func (StaticPartition) Run(devices []*simhpc.Device, tasks []*simhpc.Task) Result {
	workers := wrap(devices)
	for i, t := range tasks {
		w := workers[i%len(workers)]
		w.queue = append(w.queue, t)
	}
	eng := simhpc.NewEngine()
	for _, w := range workers {
		w := w
		var next func()
		next = func() {
			t := w.pop()
			if t == nil {
				w.done = eng.Now()
				return
			}
			dur := w.dev.Run(t)
			w.busy += dur
			eng.After(dur, next)
		}
		eng.At(0, next)
	}
	eng.Run(0)
	return finish("static", workers, 0)
}

// DynamicQueue is a central task queue: free workers pull the next task
// (the paper's "dynamic load balancing"). The single queue removes
// pre-assignment imbalance entirely at the cost of a shared structure.
type DynamicQueue struct{}

// Name implements Scheduler.
func (DynamicQueue) Name() string { return "dynamic" }

// Run implements Scheduler.
func (DynamicQueue) Run(devices []*simhpc.Device, tasks []*simhpc.Task) Result {
	workers := wrap(devices)
	queue := append([]*simhpc.Task(nil), tasks...)
	eng := simhpc.NewEngine()
	for _, w := range workers {
		w := w
		var next func()
		next = func() {
			if len(queue) == 0 {
				w.done = eng.Now()
				return
			}
			t := queue[0]
			queue = queue[1:]
			dur := w.dev.Run(t)
			w.busy += dur
			eng.After(dur, next)
		}
		eng.At(0, next)
	}
	eng.Run(0)
	return finish("dynamic", workers, 0)
}

// WorkStealing partitions statically but lets idle workers steal half of
// the largest remaining queue — the decentralized variant that scales
// past a single shared queue.
type WorkStealing struct{}

// Name implements Scheduler.
func (WorkStealing) Name() string { return "stealing" }

// Run implements Scheduler.
func (WorkStealing) Run(devices []*simhpc.Device, tasks []*simhpc.Task) Result {
	workers := wrap(devices)
	for i, t := range tasks {
		w := workers[i%len(workers)]
		w.queue = append(w.queue, t)
	}
	steals := 0
	eng := simhpc.NewEngine()
	for _, w := range workers {
		w := w
		var next func()
		next = func() {
			t := w.pop()
			if t == nil {
				// Steal half of the richest victim's queue (back half,
				// classic deque split).
				victim := richest(workers, w)
				if victim == nil || len(victim.queue) < 2 {
					w.done = eng.Now()
					return
				}
				half := len(victim.queue) / 2
				w.queue = append(w.queue, victim.queue[len(victim.queue)-half:]...)
				victim.queue = victim.queue[:len(victim.queue)-half]
				steals++
				t = w.pop()
			}
			dur := w.dev.Run(t)
			w.busy += dur
			eng.After(dur, next)
		}
		eng.At(0, next)
	}
	eng.Run(0)
	return finish("stealing", workers, steals)
}

func richest(workers []*worker, except *worker) *worker {
	var best *worker
	for _, w := range workers {
		if w == except {
			continue
		}
		if best == nil || len(w.queue) > len(best.queue) {
			best = w
		}
	}
	if best != nil && len(best.queue) == 0 {
		return nil
	}
	return best
}

func wrap(devices []*simhpc.Device) []*worker {
	ws := make([]*worker, len(devices))
	for i, d := range devices {
		ws[i] = &worker{dev: d}
	}
	return ws
}

// Campaign runs the same ligand batch under all three schedulers on
// fresh identical device sets and returns the comparison rows.
func Campaign(nWorkers, nLigands int, alpha float64, seed uint64) []Result {
	mkDevices := func() []*simhpc.Device {
		rng := simhpc.NewRNG(seed)
		var ds []*simhpc.Device
		for i := 0; i < nWorkers; i++ {
			// Heterogeneous worker pool: 1 CPU : 1 GPU alternating, the
			// §VII-a "different tasks might be more efficient on
			// different types of processors" setting.
			if i%2 == 0 {
				ds = append(ds, simhpc.NewDevice(simhpc.XeonCPUSpec(), fmt.Sprintf("cpu%d", i), 0.15, rng))
			} else {
				ds = append(ds, simhpc.NewDevice(simhpc.GPGPUSpec(), fmt.Sprintf("gpu%d", i), 0.15, rng))
			}
		}
		return ds
	}
	mkTasks := func() []*simhpc.Task {
		gen := simhpc.NewWorkloadGen(seed + 1)
		return gen.DockingBatch(nLigands, alpha, 5).Tasks
	}
	var out []Result
	for _, s := range []Scheduler{StaticPartition{}, DynamicQueue{}, WorkStealing{}} {
		out = append(out, s.Run(mkDevices(), mkTasks()))
	}
	return out
}

// SortByMakespan orders results best-first.
func SortByMakespan(rs []Result) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].MakespanS < rs[j].MakespanS })
}
