package simhpc

import "fmt"

// Node is one compute node: a host CPU plus optional accelerators, a
// first-order thermal model, and energy accounting.
type Node struct {
	ID      string
	Devices []*Device

	// Thermal model: dT/dt = (P·Rth + Tamb − T) / TauS.
	TempC     float64
	RthCPerW  float64 // thermal resistance, °C per watt
	TauS      float64 // thermal time constant, seconds
	TSafeC    float64 // thermally-safe ceiling
	throttled bool
}

// NodeConfig selects a node's device complement.
type NodeConfig struct {
	CPUs   int
	MICs   int
	GPUs   int
	Spread float64 // per-instance power variability (0.15 = paper's 15 %)
}

// NewNode builds a node with the given device complement; rng drives
// per-instance variability.
func NewNode(id string, cfg NodeConfig, rng *RNG) *Node {
	n := &Node{
		ID:       id,
		TempC:    35,
		RthCPerW: 0.065,
		TauS:     90,
		TSafeC:   85,
	}
	for i := 0; i < cfg.CPUs; i++ {
		n.Devices = append(n.Devices, NewDevice(XeonCPUSpec(), fmt.Sprintf("%s-cpu%d", id, i), cfg.Spread, rng))
	}
	for i := 0; i < cfg.MICs; i++ {
		n.Devices = append(n.Devices, NewDevice(MICSpec(), fmt.Sprintf("%s-mic%d", id, i), cfg.Spread, rng))
	}
	for i := 0; i < cfg.GPUs; i++ {
		n.Devices = append(n.Devices, NewDevice(GPGPUSpec(), fmt.Sprintf("%s-gpu%d", id, i), cfg.Spread, rng))
	}
	return n
}

// HomogeneousNode is a CPU-only node (the paper's homogeneous baseline).
func HomogeneousNode(id string, spread float64, rng *RNG) *Node {
	return NewNode(id, NodeConfig{CPUs: 2, Spread: spread}, rng)
}

// HeterogeneousNode is the NeXtScale-style CPU + accelerator node.
func HeterogeneousNode(id string, spread float64, rng *RNG) *Node {
	return NewNode(id, NodeConfig{CPUs: 1, GPUs: 2, Spread: spread}, rng)
}

// Device returns the i-th device.
func (n *Node) Device(i int) *Device { return n.Devices[i] }

// CPUDevice returns the first CPU device, or nil.
func (n *Node) CPUDevice() *Device {
	for _, d := range n.Devices {
		if d.Spec.Kind == CPU {
			return d
		}
	}
	return nil
}

// PeakGFLOPS sums device peaks.
func (n *Node) PeakGFLOPS() float64 {
	var s float64
	for _, d := range n.Devices {
		s += d.Spec.PeakGFLOPS
	}
	return s
}

// PowerW returns current node power assuming the given utilization on
// every device at its current P-state.
func (n *Node) PowerW(util float64) float64 {
	var s float64
	for _, d := range n.Devices {
		s += d.PowerW(d.PState(), util)
	}
	return s
}

// IdlePowerW is node power with all devices idle.
func (n *Node) IdlePowerW() float64 {
	var s float64
	for _, d := range n.Devices {
		s += d.IdlePowerW()
	}
	return s
}

// EnergyJ sums device energy counters.
func (n *Node) EnergyJ() float64 {
	var s float64
	for _, d := range n.Devices {
		s += d.EnergyJoules
	}
	return s
}

// EfficiencyGFLOPSPerW is the node-level Green500-style metric at full
// load and top P-states.
func (n *Node) EfficiencyGFLOPSPerW() float64 {
	return n.PeakGFLOPS() / n.PowerW(1)
}

// StepThermal advances the node's temperature by dt seconds under the
// given dissipated power and ambient temperature, and reports whether
// the node is above its thermal-safe ceiling afterwards.
func (n *Node) StepThermal(dt, powerW, ambientC float64) bool {
	if dt <= 0 {
		return n.TempC > n.TSafeC
	}
	steady := ambientC + powerW*n.RthCPerW
	// Exact first-order response over dt.
	n.TempC = steady + (n.TempC-steady)*expNeg(dt/n.TauS)
	n.throttled = n.TempC > n.TSafeC
	return n.throttled
}

// Throttled reports whether the last thermal step exceeded TSafeC.
func (n *Node) Throttled() bool { return n.throttled }

// expNeg computes e^(-x) for x >= 0 with a guard for large x.
func expNeg(x float64) float64 {
	if x > 40 {
		return 0
	}
	// Use the math package via a tiny wrapper to keep call sites tidy.
	return mathExp(-x)
}
