package simhpc

import "container/heap"

// Engine is a minimal discrete-event simulation core: a time-ordered
// event queue with deterministic FIFO tie-breaking.
type Engine struct {
	now   float64
	seq   int64
	queue eventHeap
}

// NewEngine returns an engine at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated time in seconds.
func (e *Engine) Now() float64 { return e.now }

// At schedules fn to run at absolute time t (clamped to now).
func (e *Engine) At(t float64, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.queue, &event{t: t, seq: e.seq, fn: fn})
}

// After schedules fn to run dt seconds from now.
func (e *Engine) After(dt float64, fn func()) { e.At(e.now+dt, fn) }

// Step runs the next event; it reports false when the queue is empty.
func (e *Engine) Step() bool {
	if e.queue.Len() == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*event)
	e.now = ev.t
	ev.fn()
	return true
}

// Run drains the queue (or stops once now exceeds until, if until > 0).
func (e *Engine) Run(until float64) {
	for e.queue.Len() > 0 {
		if until > 0 && e.queue[0].t > until {
			e.now = until
			return
		}
		e.Step()
	}
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return e.queue.Len() }

type event struct {
	t   float64
	seq int64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
