package simhpc

import (
	"testing"
	"testing/quick"
)

func baseMeasured() Measured {
	return Measured{Nodes: 8, TaskS: 0.01, TasksPerBatch: 1000, NodePowerW: 900}
}

func TestProjectBaseline(t *testing.T) {
	m := DefaultScaling()
	base := baseMeasured()
	p := m.Project(base, base.Nodes)
	if p.SpeedupX < 0.95 || p.SpeedupX > 1.0 {
		t.Errorf("self-projection speedup %v, want ~1", p.SpeedupX)
	}
	if p.Efficiency <= 0.9 {
		t.Errorf("small-scale efficiency %v too low", p.Efficiency)
	}
	if p.PowerMW <= 0 {
		t.Error("power should be positive")
	}
}

func TestEfficiencyDecreasesWithScale(t *testing.T) {
	m := DefaultScaling()
	base := baseMeasured()
	sweep := m.Sweep(base, 1<<20)
	if len(sweep) < 10 {
		t.Fatalf("sweep rows: %d", len(sweep))
	}
	for i := 1; i < len(sweep); i++ {
		if sweep[i].Efficiency > sweep[i-1].Efficiency {
			t.Errorf("efficiency must not increase with scale: %v then %v",
				sweep[i-1].Efficiency, sweep[i].Efficiency)
		}
		if sweep[i].SpeedupX <= sweep[i-1].SpeedupX {
			t.Errorf("weak-scaling speedup should still grow: %v then %v",
				sweep[i-1].SpeedupX, sweep[i].SpeedupX)
		}
		if sweep[i].CommShare < sweep[i-1].CommShare-1e-12 {
			t.Errorf("comm share should not shrink with scale: %v then %v",
				sweep[i-1].CommShare, sweep[i].CommShare)
		}
	}
	if sweep[len(sweep)-1].String() == "" {
		t.Error("empty render")
	}
}

func TestNodesForExaflop(t *testing.T) {
	m := DefaultScaling()
	base := baseMeasured()
	nodeRate := 6500.0 // heterogeneous node GFLOPS
	nodes, p := m.NodesForExaflop(base, nodeRate)
	ideal := int(1e9 / nodeRate)
	if nodes < ideal {
		t.Errorf("nodes %d below the zero-overhead ideal %d", nodes, ideal)
	}
	// Efficiency loss at that scale must be what inflated the count.
	if p.Efficiency >= 1 {
		t.Errorf("exascale efficiency %v should be < 1", p.Efficiency)
	}
	got := float64(nodes) * nodeRate * p.Efficiency
	if got < 0.99e9 || got > 1.05e9 {
		t.Errorf("delivered rate %g GFLOPS, want ~1e9", got)
	}
	// The paper's power question: at ~900 W/node is the 20-30 MW envelope
	// within reach? Our calibrated hetero node overshoots it — exactly the
	// gap ANTAREX motivates ("two orders of magnitude" in §I was for 2015
	// efficiency; here it is ~5x).
	if p.PowerMW < 30 {
		t.Errorf("at 2015-era efficiency the projection should exceed the 30 MW envelope, got %.1f MW", p.PowerMW)
	}
}

// Property: projections never report negative or >1 efficiency, and
// power scales linearly in nodes.
func TestProjectionSanityProperty(t *testing.T) {
	m := DefaultScaling()
	base := baseMeasured()
	f := func(raw uint16) bool {
		nodes := int(raw)%100000 + base.Nodes
		p := m.Project(base, nodes)
		if p.Efficiency <= 0 || p.Efficiency > 1 {
			return false
		}
		wantMW := float64(p.Nodes) * base.NodePowerW / 1e6
		return p.PowerMW == wantMW
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
