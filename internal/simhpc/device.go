package simhpc

import "fmt"

// DeviceKind enumerates the processor types of a heterogeneous node.
type DeviceKind int

// Device kinds.
const (
	CPU DeviceKind = iota
	MIC
	GPGPU
)

// String returns the kind name.
func (k DeviceKind) String() string {
	switch k {
	case CPU:
		return "CPU"
	case MIC:
		return "MIC"
	case GPGPU:
		return "GPGPU"
	}
	return fmt.Sprintf("DeviceKind(%d)", int(k))
}

// PState is one DVFS operating point.
type PState struct {
	FreqGHz float64
	VoltV   float64
}

// DeviceSpec is the nominal datasheet of a device model.
type DeviceSpec struct {
	Kind DeviceKind
	Name string
	// PeakGFLOPS is the peak compute rate at the highest P-state.
	PeakGFLOPS float64
	// MemBWGBs is the memory bandwidth in GB/s (frequency-independent).
	MemBWGBs float64
	// StaticW is leakage/uncore power, drawn whenever the device is on.
	StaticW float64
	// DynMaxW is dynamic power at the highest P-state under full load.
	DynMaxW float64
	// PStates is the DVFS ladder, ascending by frequency. CPUs expose a
	// full ladder; accelerators may expose fewer points.
	PStates []PState
}

// MaxPState returns the index of the highest-frequency P-state.
func (s *DeviceSpec) MaxPState() int { return len(s.PStates) - 1 }

// Validate checks internal consistency.
func (s *DeviceSpec) Validate() error {
	if len(s.PStates) == 0 {
		return fmt.Errorf("simhpc: device %s has no P-states", s.Name)
	}
	for i := 1; i < len(s.PStates); i++ {
		if s.PStates[i].FreqGHz <= s.PStates[i-1].FreqGHz {
			return fmt.Errorf("simhpc: device %s P-states not ascending", s.Name)
		}
	}
	if s.PeakGFLOPS <= 0 || s.MemBWGBs <= 0 || s.DynMaxW <= 0 {
		return fmt.Errorf("simhpc: device %s has non-positive ratings", s.Name)
	}
	return nil
}

// Device is one physical instance of a spec, carrying its manufacturing
// variability: different instances of the same nominal component execute
// the same application with measurably different energy (§V cites 15 %).
type Device struct {
	Spec *DeviceSpec
	ID   string
	// PowerMult scales both static and dynamic power for this instance
	// (process variation). 1.0 is nominal.
	PowerMult float64
	// pstate is the current operating point index.
	pstate int
	// Busy tracks utilization bookkeeping.
	BusySeconds  float64
	EnergyJoules float64
}

// NewDevice instantiates spec with variability drawn from rng:
// PowerMult ~ Uniform(1-spread/2, 1+spread/2), so the max-min spread
// across instances approaches `spread` of nominal. Pass spread=0.15 to
// reproduce the paper's 15 % figure, 0 for ideal parts.
func NewDevice(spec *DeviceSpec, id string, spread float64, rng *RNG) *Device {
	mult := 1.0
	if spread > 0 && rng != nil {
		mult = rng.Uniform(1-spread/2, 1+spread/2)
	}
	return &Device{Spec: spec, ID: id, PowerMult: mult, pstate: spec.MaxPState()}
}

// PState returns the current operating-point index.
func (d *Device) PState() int { return d.pstate }

// SetPState clamps and sets the operating point.
func (d *Device) SetPState(i int) {
	if i < 0 {
		i = 0
	}
	if i > d.Spec.MaxPState() {
		i = d.Spec.MaxPState()
	}
	d.pstate = i
}

// FreqRatio returns f/fmax for P-state i.
func (d *Device) FreqRatio(i int) float64 {
	max := d.Spec.PStates[d.Spec.MaxPState()].FreqGHz
	return d.Spec.PStates[i].FreqGHz / max
}

// PowerW returns instantaneous power at P-state i under the given
// utilization in [0,1]: static + dynamic·(f/fmax)·(V/Vmax)²·util, scaled
// by the instance's variability multiplier.
func (d *Device) PowerW(i int, util float64) float64 {
	if util < 0 {
		util = 0
	}
	if util > 1 {
		util = 1
	}
	ps := d.Spec.PStates[i]
	maxPS := d.Spec.PStates[d.Spec.MaxPState()]
	fRatio := ps.FreqGHz / maxPS.FreqGHz
	vRatio := ps.VoltV / maxPS.VoltV
	dyn := d.Spec.DynMaxW * fRatio * vRatio * vRatio * util
	return (d.Spec.StaticW + dyn) * d.PowerMult
}

// IdlePowerW is the power drawn with no work.
func (d *Device) IdlePowerW() float64 { return d.Spec.StaticW * d.PowerMult }

// ExecTime returns the time (seconds) to execute a task at P-state i
// using a roofline-style model: compute time scales inversely with
// frequency, memory time does not.
func (d *Device) ExecTime(t *Task, i int) float64 {
	fRatio := d.FreqRatio(i)
	compute := t.GFlop / (d.Spec.PeakGFLOPS * fRatio)
	mem := t.MemGB / d.Spec.MemBWGBs
	return compute + mem
}

// StallPowerFrac is the fraction of active dynamic power a core still
// draws while stalled on memory: the clock tree, speculation and retry
// traffic keep burning energy even though no FLOPs retire. This is the
// blind spot of busyness-based governors — the core looks 100 % busy to
// the OS while stalled — and the source of the §V head-room.
const StallPowerFrac = 0.6

// ExecEnergy returns the energy (joules) to execute the task at P-state
// i, assuming the device is fully committed to it for the duration.
// During the memory-stalled share of the runtime the core draws
// StallPowerFrac of its active dynamic power.
func (d *Device) ExecEnergy(t *Task, i int) float64 {
	dur := d.ExecTime(t, i)
	compute := t.GFlop / (d.Spec.PeakGFLOPS * d.FreqRatio(i))
	util := 1.0
	if dur > 0 {
		cf := compute / dur
		util = cf + StallPowerFrac*(1-cf)
	}
	return d.PowerW(i, util) * dur
}

// Run executes the task at the current P-state, updating busy-time and
// energy accounting, and returns the duration.
func (d *Device) Run(t *Task) float64 {
	dur := d.ExecTime(t, d.pstate)
	d.BusySeconds += dur
	d.EnergyJoules += d.ExecEnergy(t, d.pstate)
	return dur
}

// AccountIdle charges idle power for dur seconds.
func (d *Device) AccountIdle(dur float64) {
	if dur > 0 {
		d.EnergyJoules += d.IdlePowerW() * dur
	}
}

// EfficiencyGFLOPSPerW returns the device's peak compute efficiency at
// the top P-state under full load — the Green500-style metric of §I.
func (d *Device) EfficiencyGFLOPSPerW() float64 {
	return d.Spec.PeakGFLOPS / d.PowerW(d.Spec.MaxPState(), 1)
}

// Standard device models, calibrated against the paper's cited numbers.
// A XeonCPU alone delivers ≈2.3 GFLOPS/W; a heterogeneous node (CPU + 2
// accelerators) averages ≈7 GFLOPS/W — the "three times" of §I.

// XeonCPUSpec returns a Haswell-class CPU model (NeXtScale/Salomon hosts).
func XeonCPUSpec() *DeviceSpec {
	return &DeviceSpec{
		Kind: CPU, Name: "xeon-haswell",
		PeakGFLOPS: 500, MemBWGBs: 60,
		StaticW: 37, DynMaxW: 180,
		PStates: []PState{
			{1.2, 0.80}, {1.4, 0.85}, {1.6, 0.90}, {1.8, 0.95},
			{2.0, 1.00}, {2.2, 1.05}, {2.4, 1.12}, {2.6, 1.20},
		},
	}
}

// MICSpec returns a Xeon Phi (Knights Corner) coprocessor model.
func MICSpec() *DeviceSpec {
	return &DeviceSpec{
		Kind: MIC, Name: "xeon-phi",
		PeakGFLOPS: 1200, MemBWGBs: 180,
		StaticW: 45, DynMaxW: 205,
		PStates: []PState{
			{0.8, 0.90}, {1.0, 1.00}, {1.1, 1.05}, {1.24, 1.10},
		},
	}
}

// GPGPUSpec returns a Kepler-class GPGPU model.
func GPGPUSpec() *DeviceSpec {
	return &DeviceSpec{
		Kind: GPGPU, Name: "kepler",
		PeakGFLOPS: 3000, MemBWGBs: 250,
		StaticW: 40, DynMaxW: 300,
		PStates: []PState{
			{0.56, 0.90}, {0.70, 1.00}, {0.80, 1.06}, {0.88, 1.12},
		},
	}
}
