package simhpc

// Task is one schedulable unit of work, characterized by its compute
// volume and memory traffic (roofline coordinates). The ratio of the two
// decides how much the task's runtime scales with frequency — the lever
// behind operating-point optimization.
type Task struct {
	ID    int
	GFlop float64 // compute volume
	MemGB float64 // memory traffic
	// Affinity optionally restricts which device kinds may run the task
	// (empty = any).
	Affinity []DeviceKind
	// Tag labels the generating workload for reporting.
	Tag string
}

// CanRunOn reports whether the task may execute on kind.
func (t *Task) CanRunOn(kind DeviceKind) bool {
	if len(t.Affinity) == 0 {
		return true
	}
	for _, k := range t.Affinity {
		if k == kind {
			return true
		}
	}
	return false
}

// ComputeIntensity returns GFlop per GB of memory traffic — the roofline
// x-coordinate. High values are compute-bound.
func (t *Task) ComputeIntensity() float64 {
	if t.MemGB == 0 {
		return 1e9
	}
	return t.GFlop / t.MemGB
}

// Job is a named batch of tasks.
type Job struct {
	Name  string
	Tasks []*Task
}

// TotalGFlop sums the job's compute volume.
func (j *Job) TotalGFlop() float64 {
	var s float64
	for _, t := range j.Tasks {
		s += t.GFlop
	}
	return s
}

// WorkloadGen generates synthetic workloads with controlled roofline
// characteristics.
type WorkloadGen struct {
	rng *RNG
	seq int
}

// NewWorkloadGen returns a generator with a deterministic seed.
func NewWorkloadGen(seed uint64) *WorkloadGen {
	return &WorkloadGen{rng: NewRNG(seed)}
}

func (g *WorkloadGen) next() int {
	g.seq++
	return g.seq
}

// ComputeBound returns a task dominated by arithmetic (runtime scales
// ~linearly with frequency).
func (g *WorkloadGen) ComputeBound(gflop float64) *Task {
	return &Task{ID: g.next(), GFlop: gflop, MemGB: gflop / 400, Tag: "compute"}
}

// MemoryBound returns a task dominated by memory traffic (runtime nearly
// frequency-insensitive).
func (g *WorkloadGen) MemoryBound(gflop float64) *Task {
	return &Task{ID: g.next(), GFlop: gflop, MemGB: gflop / 2, Tag: "memory"}
}

// Balanced returns a task between the two regimes.
func (g *WorkloadGen) Balanced(gflop float64) *Task {
	return &Task{ID: g.next(), GFlop: gflop, MemGB: gflop / 12, Tag: "balanced"}
}

// Mix returns n tasks drawn from the three classes with the given
// weights (compute, balanced, memory).
func (g *WorkloadGen) Mix(n int, wCompute, wBalanced, wMemory float64, gflop float64) []*Task {
	total := wCompute + wBalanced + wMemory
	tasks := make([]*Task, 0, n)
	for i := 0; i < n; i++ {
		u := g.rng.Float64() * total
		size := gflop * g.rng.Uniform(0.5, 1.5)
		switch {
		case u < wCompute:
			tasks = append(tasks, g.ComputeBound(size))
		case u < wCompute+wBalanced:
			tasks = append(tasks, g.Balanced(size))
		default:
			tasks = append(tasks, g.MemoryBound(size))
		}
	}
	return tasks
}

// DockingBatch generates the use-case-1 workload: n ligand-evaluation
// tasks whose costs follow a Pareto(alpha) heavy tail — "unpredictable
// imbalances in the computational time, since the verification of each
// point in the solution space requires a widely varying time" (§VII-a).
// alpha around 1.3-1.8 gives the strong imbalance the paper describes.
func (g *WorkloadGen) DockingBatch(n int, alpha, baseGFlop float64) *Job {
	job := &Job{Name: "docking"}
	for i := 0; i < n; i++ {
		cost := g.rng.Pareto(alpha, baseGFlop)
		// Cap the tail so a single ligand cannot exceed 500x base:
		// docking codes bound pose evaluation.
		if cost > 500*baseGFlop {
			cost = 500 * baseGFlop
		}
		job.Tasks = append(job.Tasks, &Task{
			ID: g.next(), GFlop: cost, MemGB: cost / 50, Tag: "ligand",
		})
	}
	return job
}
