package simhpc

import (
	"math"
	"sort"
	"testing"
)

// TestSeasonalPUE reproduces §V: >10 % PUE loss transitioning from
// winter to summer ambient.
func TestSeasonalPUE(t *testing.T) {
	cool := DefaultCooling()
	winter := cool.PUE(15)
	summer := cool.PUE(35)
	loss := (summer - winter) / winter
	if loss <= 0.10 {
		t.Errorf("seasonal PUE loss %.1f%%, want > 10%%", loss*100)
	}
	if winter < 1.0 || summer < winter {
		t.Errorf("PUE values implausible: winter=%.3f summer=%.3f", winter, summer)
	}
	// Free cooling makes PUE flat below the threshold.
	if cool.PUE(5) != cool.PUE(15) {
		t.Error("PUE should be flat in the free-cooling regime")
	}
	// Cooling boost lowers effective ambient but raises PUE.
	boosted := cool
	boosted.CoolingBoost = 1
	if boosted.EffectiveAmbientC(35) >= cool.EffectiveAmbientC(35) {
		t.Error("cooling boost should lower effective ambient")
	}
	if boosted.PUE(35) <= cool.PUE(35) {
		t.Error("cooling boost should cost PUE")
	}
}

func TestClusterAggregates(t *testing.T) {
	rng := NewRNG(7)
	c := NewCluster(4, 20, func(i int) *Node {
		return HeterogeneousNode("n", 0.15, rng)
	})
	if len(c.Nodes) != 4 {
		t.Fatalf("nodes: %d", len(c.Nodes))
	}
	if c.PeakGFLOPS() <= 0 || c.ITPowerW(1) <= 0 {
		t.Error("aggregates should be positive")
	}
	if c.FacilityPowerW(1) <= c.ITPowerW(1) {
		t.Error("facility power must exceed IT power (PUE > 1)")
	}
}

func TestThermalModel(t *testing.T) {
	n := HomogeneousNode("n", 0, nil)
	n.TempC = 30
	p := n.PowerW(1)
	// Step to steady state: T -> ambient + P*Rth.
	for i := 0; i < 100; i++ {
		n.StepThermal(10, p, 25)
	}
	want := 25 + p*n.RthCPerW
	if math.Abs(n.TempC-want) > 0.5 {
		t.Errorf("steady-state temp %.1f, want %.1f", n.TempC, want)
	}
	// Hot ambient pushes the node over its ceiling.
	n2 := HomogeneousNode("n2", 0, nil)
	n2.TSafeC = 60
	hot := false
	for i := 0; i < 100; i++ {
		if n2.StepThermal(10, p, 45) {
			hot = true
		}
	}
	if !hot || !n2.Throttled() {
		t.Error("node should exceed its thermal ceiling at 45C ambient")
	}
	// Cooling restores safety.
	for i := 0; i < 200; i++ {
		n2.StepThermal(10, n2.IdlePowerW(), 15)
	}
	if n2.Throttled() {
		t.Errorf("node should cool down, at %.1fC", n2.TempC)
	}
}

func TestClusterStepThermals(t *testing.T) {
	c := NewCluster(8, 45, func(i int) *Node {
		n := HomogeneousNode("n", 0, nil)
		n.TSafeC = 55
		return n
	})
	hot := 0
	for i := 0; i < 100; i++ {
		hot = c.StepThermals(10, 1)
	}
	if hot != 8 {
		t.Errorf("at 45C ambient and full load, all 8 nodes should be hot, got %d", hot)
	}
	// Boosted cooling rescues them.
	c.Cooling.CoolingBoost = 1
	for i := 0; i < 200; i++ {
		hot = c.StepThermals(10, 0.2)
	}
	if hot != 0 {
		t.Errorf("with cooling boost and low load, no node should be hot, got %d", hot)
	}
}

func TestEngineOrderingAndDeterminism(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(3, func() { order = append(order, 3) })
	e.At(1, func() { order = append(order, 1) })
	e.At(2, func() { order = append(order, 2) })
	e.At(1, func() { order = append(order, 10) }) // FIFO at equal times
	e.Run(0)
	want := []int{1, 10, 2, 3}
	if len(order) != len(want) {
		t.Fatalf("order: %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order: %v, want %v", order, want)
		}
	}
	if e.Now() != 3 {
		t.Errorf("final time %v", e.Now())
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			e.After(1, tick)
		}
	}
	e.After(1, tick)
	e.Run(0)
	if count != 5 || e.Now() != 5 {
		t.Errorf("count=%d now=%v", count, e.Now())
	}
	// Run with a horizon stops early.
	e2 := NewEngine()
	fired := false
	e2.At(100, func() { fired = true })
	e2.Run(50)
	if fired || e2.Now() != 50 {
		t.Errorf("horizon: fired=%v now=%v", fired, e2.Now())
	}
	if e2.Pending() != 1 {
		t.Errorf("pending: %d", e2.Pending())
	}
}

func TestEnginePastEventClamps(t *testing.T) {
	e := NewEngine()
	e.At(5, func() {
		e.At(1, func() {}) // in the past: clamps to now
	})
	e.Run(0)
	if e.Now() != 5 {
		t.Errorf("now=%v", e.Now())
	}
}

func TestRNGDeterminismAndDistributions(t *testing.T) {
	a, b := NewRNG(99), NewRNG(99)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	// Pareto is heavy-tailed: its max should dwarf its median.
	rng := NewRNG(5)
	var xs []float64
	for i := 0; i < 2000; i++ {
		xs = append(xs, rng.Pareto(1.5, 1))
	}
	sort.Float64s(xs)
	median := xs[len(xs)/2]
	max := xs[len(xs)-1]
	if max/median < 20 {
		t.Errorf("Pareto tail too light: max/median = %.1f", max/median)
	}
	// Normal matches its moments roughly.
	var sum, sumSq float64
	for i := 0; i < 5000; i++ {
		v := rng.Normal(10, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / 5000
	sd := math.Sqrt(sumSq/5000 - mean*mean)
	if math.Abs(mean-10) > 0.2 || math.Abs(sd-2) > 0.2 {
		t.Errorf("Normal moments: mean=%.2f sd=%.2f", mean, sd)
	}
}

func TestWorkloadGenerators(t *testing.T) {
	gen := NewWorkloadGen(11)
	cb := gen.ComputeBound(100)
	mb := gen.MemoryBound(100)
	if cb.ComputeIntensity() <= mb.ComputeIntensity() {
		t.Error("compute-bound must have higher intensity than memory-bound")
	}
	mix := gen.Mix(300, 1, 1, 1, 50)
	tags := map[string]int{}
	for _, task := range mix {
		tags[task.Tag]++
	}
	for _, tag := range []string{"compute", "balanced", "memory"} {
		if tags[tag] < 50 {
			t.Errorf("mix underrepresents %s: %v", tag, tags)
		}
	}
	// Docking batch: heavy-tailed but capped.
	job := gen.DockingBatch(500, 1.5, 1)
	if len(job.Tasks) != 500 || job.Name != "docking" {
		t.Fatalf("job: %s/%d", job.Name, len(job.Tasks))
	}
	var max float64
	for _, task := range job.Tasks {
		if task.GFlop > max {
			max = task.GFlop
		}
		if task.GFlop > 500 {
			t.Errorf("task cost %v exceeds cap", task.GFlop)
		}
	}
	if max < 20 {
		t.Errorf("docking tail too light: max=%v", max)
	}
	if job.TotalGFlop() <= 0 {
		t.Error("total should be positive")
	}
}

func TestTaskAffinity(t *testing.T) {
	anyTask := &Task{}
	if !anyTask.CanRunOn(CPU) || !anyTask.CanRunOn(GPGPU) {
		t.Error("no affinity should run anywhere")
	}
	gpuOnly := &Task{Affinity: []DeviceKind{GPGPU}}
	if gpuOnly.CanRunOn(CPU) || !gpuOnly.CanRunOn(GPGPU) {
		t.Error("affinity filtering broken")
	}
}
