package simhpc

import (
	"fmt"
	"math"
)

// §I/§VII: "All the key ANTAREX innovations will be designed and
// engineered since the beginning to be scaled-up to the Exascale level.
// Performance metrics extracted from the two use cases will be modelled
// to extrapolate these results towards Exascale systems."
//
// ScalingModel does that extrapolation: from a measured small-scale run
// (nodes, throughput, efficiency) it projects strong/weak scaling to
// Exascale node counts under a communication model (alpha-beta collective
// costs growing with node count) and the serial-fraction limit
// (Amdahl/Gustafson), plus the facility power envelope.

// ScalingModel parameterizes the extrapolation.
type ScalingModel struct {
	// SerialFraction is the non-parallelizable share of the workload.
	SerialFraction float64
	// CommLatencyS is the per-collective base latency (alpha).
	CommLatencyS float64
	// CommBytesPerTask and NetBWGBs set the bandwidth term (beta).
	CommBytesPerTask float64
	NetBWGBs         float64
	// CollectiveScale is how collective cost grows with node count N:
	// log2(N) for tree-based collectives.
	CollectiveScale func(n float64) float64
}

// DefaultScaling returns a model with tree collectives and a small
// serial fraction typical of the docking use case.
func DefaultScaling() ScalingModel {
	return ScalingModel{
		SerialFraction:   0.002,
		CommLatencyS:     5e-6,
		CommBytesPerTask: 1e5,
		NetBWGBs:         10,
		CollectiveScale:  math.Log2,
	}
}

// Measured is the small-scale observation the extrapolation starts from.
type Measured struct {
	Nodes         int
	TaskS         float64 // mean per-task compute time on one node
	TasksPerBatch int     // tasks per synchronization step
	NodePowerW    float64
}

// Projection is one extrapolated operating point.
type Projection struct {
	Nodes      int
	SpeedupX   float64 // vs the measured configuration
	Efficiency float64 // parallel efficiency in (0,1]
	PowerMW    float64
	// CommShare is the fraction of step time spent communicating.
	CommShare float64
}

// String renders the projection row.
func (p Projection) String() string {
	return fmt.Sprintf("N=%8d  speedup=%10.1fx  eff=%5.1f%%  comm=%4.1f%%  power=%7.2f MW",
		p.Nodes, p.SpeedupX, p.Efficiency*100, p.CommShare*100, p.PowerMW)
}

// Project extrapolates the measured run to the given node count under
// weak scaling (problem grows with nodes — the docking library and
// navigation request stream both scale this way).
func (m ScalingModel) Project(base Measured, nodes int) Projection {
	if nodes < base.Nodes {
		nodes = base.Nodes
	}
	n := float64(nodes)
	b := float64(base.Nodes)

	// Per-step compute time stays constant under weak scaling
	// (Gustafson): the serial share stays a fixed fraction of the step,
	// while collective communication grows with the tree depth log2(N).
	compute := base.TaskS * float64(base.TasksPerBatch)
	serial := compute * m.SerialFraction
	comm := (m.CommLatencyS + m.CommBytesPerTask/1e9/m.NetBWGBs) * m.CollectiveScale(n)
	step := compute + serial + comm
	eff := compute / step
	return Projection{
		Nodes:      nodes,
		SpeedupX:   (n / b) * eff,
		Efficiency: eff,
		PowerMW:    n * base.NodePowerW / 1e6,
		CommShare:  comm / step,
	}
}

// Sweep projects a ladder of node counts (doubling from the measured
// scale to max), the series behind the Exascale roadmap table.
func (m ScalingModel) Sweep(base Measured, maxNodes int) []Projection {
	var out []Projection
	for n := base.Nodes; n <= maxNodes; n *= 2 {
		out = append(out, m.Project(base, n))
	}
	return out
}

// NodesForExaflop returns the node count needed to reach 1 EFLOPS given
// a per-node rate, accounting for the projected parallel efficiency at
// that scale (fixed-point iteration; converges because efficiency is
// monotone decreasing in N).
func (m ScalingModel) NodesForExaflop(base Measured, nodeGFLOPS float64) (int, Projection) {
	const exa = 1e9 // EFLOPS in GFLOPS
	nodes := int(exa / nodeGFLOPS)
	for i := 0; i < 30; i++ {
		p := m.Project(base, nodes)
		want := int(exa / (nodeGFLOPS * p.Efficiency))
		if want == nodes {
			return nodes, p
		}
		nodes = want
	}
	return nodes, m.Project(base, nodes)
}
