// Package simhpc is a discrete-event simulator of a heterogeneous HPC
// cluster, standing in for the paper's target platforms (CINECA's
// NeXtScale Xeon+MIC system and IT4Innovations' Salomon Xeon Phi
// cluster). It models:
//
//   - devices (CPU, MIC, GPGPU) with DVFS ladders and dynamic/static
//     power, calibrated so a heterogeneous node reaches ≈7 GFLOPS/W vs
//     ≈2.3 GFLOPS/W for a CPU-only node (the 7032 vs 2304 MFLOPS/W
//     Green500 figures cited in §I);
//   - manufacturing variability: instances of the same nominal component
//     differ in power by ≈15 % (§V);
//   - a roofline-style task execution model where memory-bound work does
//     not scale with frequency — the head-room the paper's optimal
//     operating-point selection exploits for its 18–50 % savings claim;
//   - node thermals (first-order RC) and an ambient-temperature-dependent
//     cooling model whose PUE degrades >10 % from winter to summer (§V);
//   - a discrete-event engine for scheduling experiments (use case 1).
//
// All randomness is drawn from a deterministic SplitMix64 stream so every
// experiment is reproducible bit-for-bit.
package simhpc

import "math"

// RNG is a deterministic SplitMix64 pseudo-random generator. The zero
// value is NOT usable; construct with NewRNG.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Uniform returns a uniform value in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Intn returns a uniform int in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.Uint64() % uint64(n))
}

// Normal returns a normally distributed value (Box-Muller).
func (r *RNG) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Exp returns an exponentially distributed value with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Pareto returns a Pareto(alpha, xmin) variate: the heavy-tailed
// distribution used for docking task costs (§VII-a's "widely varying
// time" per ligand).
func (r *RNG) Pareto(alpha, xmin float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return xmin / math.Pow(u, 1/alpha)
}

// LogNormal returns exp(Normal(mu, sigma)).
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Shuffle permutes xs deterministically.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
