package simhpc

import "math"

func mathExp(x float64) float64 { return math.Exp(x) }

// Cluster is a set of nodes plus facility-level state: ambient
// temperature and the cooling model that turns IT power into facility
// power (PUE).
type Cluster struct {
	Nodes    []*Node
	AmbientC float64
	Cooling  CoolingModel
}

// NewCluster builds n identical nodes via build.
func NewCluster(n int, ambientC float64, build func(i int) *Node) *Cluster {
	c := &Cluster{AmbientC: ambientC, Cooling: DefaultCooling()}
	for i := 0; i < n; i++ {
		c.Nodes = append(c.Nodes, build(i))
	}
	return c
}

// CoolingModel maps ambient temperature and IT load to facility
// overhead. Free cooling holds PUE near its floor until the ambient
// exceeds the free-cooling threshold; past it, chillers engage and PUE
// climbs — the §V observation that summer operation costs >10 % PUE vs
// winter ("MS3 … do less when it's too hot").
type CoolingModel struct {
	// PUEBase is the floor PUE with full free cooling.
	PUEBase float64
	// FreeCoolingMaxC is the ambient ceiling for free cooling.
	FreeCoolingMaxC float64
	// ChillerSlope is PUE increase per °C above the free-cooling ceiling.
	ChillerSlope float64
	// CoolingBoost (0..1) spends extra cooling effort to lower the
	// effective ambient seen by nodes, at a PUE penalty (the RTRM's
	// "optimal selection of the cooling effort" knob).
	CoolingBoost float64
}

// DefaultCooling returns a model calibrated so winter (15 °C) sits at
// PUE ≈ 1.22 and summer (35 °C) at ≈ 1.39 — a >10 % loss.
func DefaultCooling() CoolingModel {
	return CoolingModel{PUEBase: 1.22, FreeCoolingMaxC: 18, ChillerSlope: 0.010}
}

// PUE returns the power usage effectiveness at the given ambient.
func (m CoolingModel) PUE(ambientC float64) float64 {
	pue := m.PUEBase
	if over := ambientC - m.FreeCoolingMaxC; over > 0 {
		pue += m.ChillerSlope * over
	}
	// Extra cooling effort costs facility power.
	pue += 0.06 * m.CoolingBoost
	return pue
}

// EffectiveAmbientC returns the air temperature nodes actually see,
// after optional cooling boost.
func (m CoolingModel) EffectiveAmbientC(ambientC float64) float64 {
	return ambientC - 8*m.CoolingBoost
}

// PUE returns the cluster's current PUE.
func (c *Cluster) PUE() float64 { return c.Cooling.PUE(c.AmbientC) }

// ITPowerW sums node power at the given utilization.
func (c *Cluster) ITPowerW(util float64) float64 {
	var s float64
	for _, n := range c.Nodes {
		s += n.PowerW(util)
	}
	return s
}

// FacilityPowerW is IT power times PUE.
func (c *Cluster) FacilityPowerW(util float64) float64 {
	return c.ITPowerW(util) * c.PUE()
}

// PeakGFLOPS sums node peaks.
func (c *Cluster) PeakGFLOPS() float64 {
	var s float64
	for _, n := range c.Nodes {
		s += n.PeakGFLOPS()
	}
	return s
}

// StepThermals advances all node thermal states by dt at the given
// utilization and returns the number of nodes above their safe ceiling.
func (c *Cluster) StepThermals(dt, util float64) int {
	eff := c.Cooling.EffectiveAmbientC(c.AmbientC)
	hot := 0
	for _, n := range c.Nodes {
		if n.StepThermal(dt, n.PowerW(util), eff) {
			hot++
		}
	}
	return hot
}
