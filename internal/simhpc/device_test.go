package simhpc

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSpecsValidate(t *testing.T) {
	for _, spec := range []*DeviceSpec{XeonCPUSpec(), MICSpec(), GPGPUSpec()} {
		if err := spec.Validate(); err != nil {
			t.Errorf("%s: %v", spec.Name, err)
		}
	}
	bad := &DeviceSpec{Name: "bad"}
	if err := bad.Validate(); err == nil {
		t.Error("empty spec should not validate")
	}
	desc := XeonCPUSpec()
	desc.PStates[0], desc.PStates[1] = desc.PStates[1], desc.PStates[0]
	if err := desc.Validate(); err == nil {
		t.Error("non-ascending ladder should not validate")
	}
}

// TestEfficiencyCalibration pins the Green500-style numbers of §I:
// CPU-only ≈ 2304 MFLOPS/W, heterogeneous node ≈ 7032 MFLOPS/W,
// ratio ≈ 3x.
func TestEfficiencyCalibration(t *testing.T) {
	cpu := NewDevice(XeonCPUSpec(), "c", 0, nil)
	cpuEff := cpu.EfficiencyGFLOPSPerW() * 1000 // MFLOPS/W
	if cpuEff < 2304*0.9 || cpuEff > 2304*1.1 {
		t.Errorf("CPU efficiency %.0f MFLOPS/W, want ≈2304 ±10%%", cpuEff)
	}
	het := HeterogeneousNode("h", 0, nil)
	hetEff := het.EfficiencyGFLOPSPerW() * 1000
	if hetEff < 7032*0.85 || hetEff > 7032*1.15 {
		t.Errorf("hetero efficiency %.0f MFLOPS/W, want ≈7032 ±15%%", hetEff)
	}
	hom := HomogeneousNode("o", 0, nil)
	ratio := hetEff / (hom.EfficiencyGFLOPSPerW() * 1000)
	if ratio < 2.5 || ratio > 3.6 {
		t.Errorf("hetero/homog efficiency ratio %.2f, want ≈3", ratio)
	}
}

// TestVariabilitySpread reproduces §V's 15 % energy variation across
// instances of the same nominal component.
func TestVariabilitySpread(t *testing.T) {
	rng := NewRNG(42)
	task := &Task{GFlop: 100, MemGB: 2}
	var energies []float64
	for i := 0; i < 64; i++ {
		d := NewDevice(XeonCPUSpec(), "d", 0.15, rng)
		energies = append(energies, d.ExecEnergy(task, d.Spec.MaxPState()))
	}
	min, max, sum := energies[0], energies[0], 0.0
	for _, e := range energies {
		if e < min {
			min = e
		}
		if e > max {
			max = e
		}
		sum += e
	}
	mean := sum / float64(len(energies))
	spread := (max - min) / mean
	if spread < 0.10 || spread > 0.20 {
		t.Errorf("energy spread %.1f%%, want ≈15%%", spread*100)
	}
	// Zero-spread devices are identical.
	d1 := NewDevice(XeonCPUSpec(), "a", 0, nil)
	d2 := NewDevice(XeonCPUSpec(), "b", 0, nil)
	if d1.ExecEnergy(task, 0) != d2.ExecEnergy(task, 0) {
		t.Error("zero-spread devices differ")
	}
}

func TestRooflineModel(t *testing.T) {
	d := NewDevice(XeonCPUSpec(), "d", 0, nil)
	gen := NewWorkloadGen(1)
	cb := gen.ComputeBound(100)
	mb := gen.MemoryBound(100)
	lo, hi := 0, d.Spec.MaxPState()

	// Compute-bound time scales ~1/f; memory-bound barely moves.
	cbSlow := d.ExecTime(cb, lo) / d.ExecTime(cb, hi)
	mbSlow := d.ExecTime(mb, lo) / d.ExecTime(mb, hi)
	fRatio := d.Spec.PStates[hi].FreqGHz / d.Spec.PStates[lo].FreqGHz
	if cbSlow < fRatio*0.9 {
		t.Errorf("compute-bound slowdown %.2f, want ≈ freq ratio %.2f", cbSlow, fRatio)
	}
	if mbSlow > 1.3 {
		t.Errorf("memory-bound slowdown %.2f, want ≈ 1 (frequency-insensitive)", mbSlow)
	}
	// Memory-bound tasks save energy at low frequency.
	if d.ExecEnergy(mb, lo) >= d.ExecEnergy(mb, hi) {
		t.Errorf("memory-bound low-freq energy %.1f should beat high-freq %.1f",
			d.ExecEnergy(mb, lo), d.ExecEnergy(mb, hi))
	}
}

func TestPStateClamping(t *testing.T) {
	d := NewDevice(XeonCPUSpec(), "d", 0, nil)
	d.SetPState(-5)
	if d.PState() != 0 {
		t.Errorf("clamp low: %d", d.PState())
	}
	d.SetPState(999)
	if d.PState() != d.Spec.MaxPState() {
		t.Errorf("clamp high: %d", d.PState())
	}
}

func TestRunAccounting(t *testing.T) {
	d := NewDevice(XeonCPUSpec(), "d", 0, nil)
	task := &Task{GFlop: 50, MemGB: 1}
	dur := d.Run(task)
	if dur <= 0 || d.BusySeconds != dur || d.EnergyJoules <= 0 {
		t.Errorf("accounting: dur=%v busy=%v energy=%v", dur, d.BusySeconds, d.EnergyJoules)
	}
	e0 := d.EnergyJoules
	d.AccountIdle(10)
	wantIdle := d.IdlePowerW() * 10
	if math.Abs(d.EnergyJoules-e0-wantIdle) > 1e-9 {
		t.Errorf("idle accounting: got %v, want %v", d.EnergyJoules-e0, wantIdle)
	}
}

// Property: power is monotonically non-decreasing in P-state and in
// utilization.
func TestPowerMonotoneProperty(t *testing.T) {
	d := NewDevice(XeonCPUSpec(), "d", 0, nil)
	f := func(rawA, rawB uint8) bool {
		i := int(rawA) % len(d.Spec.PStates)
		j := int(rawB) % len(d.Spec.PStates)
		if i > j {
			i, j = j, i
		}
		u1 := float64(rawA%100) / 100
		u2 := float64(rawB%100) / 100
		if u1 > u2 {
			u1, u2 = u2, u1
		}
		return d.PowerW(i, u1) <= d.PowerW(j, u1)+1e-12 &&
			d.PowerW(i, u1) <= d.PowerW(i, u2)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: ExecTime decreases (weakly) with P-state; ExecEnergy is
// always positive.
func TestExecTimeMonotoneProperty(t *testing.T) {
	d := NewDevice(XeonCPUSpec(), "d", 0, nil)
	f := func(g uint16, m uint16, a, b uint8) bool {
		task := &Task{GFlop: 1 + float64(g)/10, MemGB: float64(m) / 100}
		i := int(a) % len(d.Spec.PStates)
		j := int(b) % len(d.Spec.PStates)
		if i > j {
			i, j = j, i
		}
		return d.ExecTime(task, i) >= d.ExecTime(task, j)-1e-12 &&
			d.ExecEnergy(task, i) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
