// Remote serving demo: the adaptation kernel as a multi-tenant HTTP
// service, driven purely through the controlplane client — the Fig. 1
// control loops closed over the network instead of in-process.
//
// Two tenants register over HTTP. "steady" meets its latency SLA;
// "bursty" violates it and walks down its declared level ladder (the
// built-in step-down policy), shedding epoch work. Then "steady"
// detaches while the kernel keeps running — the membership epoch drains
// it at an epoch boundary without stalling "bursty".
//
//	go run ./examples/remote                 # self-hosted: in-process server
//	go run ./examples/remote -connect URL    # drive an external antarex-serve
//
// With -connect the program doubles as an end-to-end smoke check (CI
// runs it against a freshly started cmd/antarex-serve): any failed
// assertion exits non-zero.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"repro/internal/controlplane"
	"repro/internal/monitor"
	"repro/internal/rtrm"
	"repro/internal/runtime"
	"repro/internal/simhpc"
)

func main() {
	connect := flag.String("connect", "", "control-plane URL (empty: start an in-process server)")
	flag.Parse()
	log.SetFlags(0)

	base := *connect
	if base == "" {
		var shutdown func()
		base, shutdown = selfHost()
		defer shutdown()
		log.Printf("in-process control plane on %s", base)
	}
	c := controlplane.NewClient(base, nil)

	h, err := c.Health()
	must(err)
	if h.Status != "ok" || !h.Running {
		log.Fatalf("unhealthy control plane: %+v", h)
	}
	gen0 := h.Generation

	// Register the two tenants.
	_, err = c.Register(controlplane.AppSpec{
		Name:     "steady",
		Goals:    []controlplane.GoalSpec{{Metric: monitor.MetricLatency, Target: 1.0}},
		Workload: controlplane.WorkloadSpec{Tasks: 2, GFlop: 4},
	})
	must(err)
	_, err = c.Register(controlplane.AppSpec{
		Name:     "bursty",
		Window:   8,
		Debounce: 2,
		Goals:    []controlplane.GoalSpec{{Metric: monitor.MetricLatency, Target: 1.0}},
		Workload: controlplane.WorkloadSpec{Tasks: 2, GFlop: 4},
		Levels:   []float64{1, 0.5, 0.25},
	})
	must(err)
	log.Printf("registered tenants steady + bursty (membership epoch %d -> %d)", gen0, mustGen(c))

	// Stream observations: steady within SLA, bursty far beyond it.
	stream := func(name string, lat float64) {
		_, err := c.Observe(name, []controlplane.Observation{
			{Metric: monitor.MetricLatency, Value: lat},
			{Metric: monitor.MetricLatency, Value: lat},
		})
		must(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	var bursty controlplane.AppStatus
	for {
		stream("steady", 0.3)
		stream("bursty", 4.0)
		bursty, err = c.App("bursty")
		must(err)
		if bursty.Adaptations > 0 && bursty.Level < 1 {
			break
		}
		if time.Now().After(deadline) {
			log.Fatalf("bursty never adapted: %+v", bursty)
		}
		time.Sleep(5 * time.Millisecond)
	}
	log.Printf("bursty adapted: level %.2f after %d ticks, %d fires (shedding %d%% of its work)",
		bursty.Level, bursty.Ticks, bursty.Fires, int(100*(1-bursty.Level)))

	// Live detach: steady leaves while epochs keep flowing.
	ep0, err := c.Epochs()
	must(err)
	must(c.Detach("steady"))
	deadline = time.Now().Add(30 * time.Second) // fresh budget for the settle phase
	for {
		h, err = c.Health()
		must(err)
		if h.ServedGeneration == h.Generation {
			break
		}
		if time.Now().After(deadline) {
			log.Fatalf("membership epoch never settled: %+v", h)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, err := c.App("steady"); !controlplane.IsNotFound(err) {
		log.Fatalf("detached tenant still served: %v", err)
	}
	for {
		ep, err := c.Epochs()
		must(err)
		if ep.Epochs >= ep0.Epochs+10 && ep.TotalsPerApp["bursty"] > ep0.TotalsPerApp["bursty"] {
			if ep.TotalsPerApp["steady"] <= 0 {
				log.Fatal("steady's cumulative totals were dropped on detach")
			}
			log.Printf("steady detached live at epoch %d; bursty kept running: epoch %d, %.1f GFLOP total, %.1f J",
				ep0.Epochs, ep.Epochs, ep.TotalsPerApp["bursty"], ep.EnergyJ)
			break
		}
		if time.Now().After(deadline) {
			log.Fatalf("survivor stalled after detach: %+v vs %+v", ep, ep0)
		}
		stream("bursty", 4.0)
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Println("remote serving demo: OK")
}

// selfHost spins up the whole serving stack in-process: cluster,
// manager, kernel (started empty) and the control plane on a loopback
// listener — the same wiring as cmd/antarex-serve, minus the process.
func selfHost() (base string, shutdown func()) {
	rng := simhpc.NewRNG(7)
	cluster := simhpc.NewCluster(4, 22, func(i int) *simhpc.Node {
		return simhpc.HomogeneousNode(fmt.Sprintf("n%d", i), 0.1, rng)
	})
	kernel := runtime.NewKernel(rtrm.NewManager(cluster, cluster.FacilityPowerW(1)*0.9))
	ctx, cancel := context.WithCancel(context.Background())
	if err := kernel.Start(ctx, runtime.Options{Flush: 5 * time.Millisecond}); err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: controlplane.NewServer(kernel)}
	go func() { _ = srv.Serve(ln) }()
	return "http://" + ln.Addr().String(), func() {
		_ = srv.Close()
		cancel()
		kernel.Stop()
	}
}

func mustGen(c *controlplane.Client) int64 {
	h, err := c.Health()
	must(err)
	return h.Generation
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
