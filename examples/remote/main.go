// Remote serving demo: the adaptation kernel as a multi-tenant HTTP
// service, driven purely through the controlplane client — the Fig. 1
// control loops closed over the network instead of in-process.
//
// Two tenants register over HTTP. "steady" meets its latency SLA;
// "bursty" violates it and walks down its declared level ladder (the
// built-in step-down policy), shedding epoch work. Then "steady"
// detaches while the kernel keeps running — the membership epoch drains
// it at an epoch boundary without stalling "bursty".
//
//	go run ./examples/remote                 # self-hosted: in-process server
//	go run ./examples/remote -connect URL    # drive an external antarex-serve
//	go run ./examples/remote -stream         # telemetry over the binary stream
//	go run ./examples/remote -dsl            # bursty steered by a compiled DSL policy
//
// With -stream, observations ride the persistent binary ingest
// connection (POST /v1/stream via Client.Stream) instead of one JSON
// POST per batch — the protocol built to close K5's ~20× serving tax —
// and the tenants get "-bin" name suffixes so both modes can run
// against one server. With -dsl, bursty's step-down ladder is replaced
// by a DSL aspect compiled server-side to a VM-backed kernel policy
// ({"policy": {"type": "dsl", ...}}), and once it adapts the program is
// hot-swapped live via PUT /v1/apps/{id}/policy (tenants get "-dsl"
// suffixes). With -connect the program doubles as an end-to-end smoke
// check (CI runs it against a freshly started cmd/antarex-serve, in
// all modes): any failed assertion exits non-zero.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"repro/internal/controlplane"
	"repro/internal/monitor"
	"repro/internal/rtrm"
	"repro/internal/runtime"
	"repro/internal/simhpc"
)

func main() {
	connect := flag.String("connect", "", "control-plane URL (empty: start an in-process server)")
	useStream := flag.Bool("stream", false, "send telemetry over the persistent binary stream instead of JSON POSTs")
	useDSL := flag.Bool("dsl", false, "steer bursty with a compiled DSL policy and hot-swap it live, instead of the level ladder")
	flag.Parse()
	log.SetFlags(0)

	base := *connect
	if base == "" {
		var shutdown func()
		base, shutdown = selfHost()
		defer shutdown()
		log.Printf("in-process control plane on %s", base)
	}
	c := controlplane.NewClient(base, nil)

	h, err := c.Health()
	must(err)
	if h.Status != "ok" || !h.Running {
		log.Fatalf("unhealthy control plane: %+v", h)
	}
	gen0 := h.Generation

	// Distinct tenant names per mode, so the JSON, stream and DSL runs
	// can drive the same server back to back (CI does).
	tenant := func(name string) string {
		if *useStream {
			name += "-bin"
		}
		if *useDSL {
			name += "-dsl"
		}
		return name
	}
	steadyName, burstyName := tenant("steady"), tenant("bursty")

	// Register the two tenants.
	_, err = c.Register(controlplane.AppSpec{
		Name:     steadyName,
		Goals:    []controlplane.GoalSpec{{Metric: monitor.MetricLatency, Target: 1.0}},
		Workload: controlplane.WorkloadSpec{Tasks: 2, GFlop: 4},
	})
	must(err)
	burstySpec := controlplane.AppSpec{
		Name:     burstyName,
		Window:   8,
		Debounce: 2,
		Goals:    []controlplane.GoalSpec{{Metric: monitor.MetricLatency, Target: 1.0}},
		Workload: controlplane.WorkloadSpec{Tasks: 2, GFlop: 4},
	}
	if *useDSL {
		// The same shedding behaviour as the ladder, but programmed: an
		// aspect compiled server-side at admission; each firing decision
		// multiplies the level knob by gain.
		burstySpec.Policy = &controlplane.PolicySpec{
			Type: controlplane.PolicyDSL,
			Source: `
aspectdef Steer
	input gain end
	apply
		do Scale('level', gain);
	end
	condition violation > 0 end
end
`,
			Params: map[string]float64{"gain": 0.5},
		}
	} else {
		burstySpec.Policy = &controlplane.PolicySpec{
			Type:   controlplane.PolicyLadder,
			Levels: []float64{1, 0.5, 0.25},
		}
	}
	burstyStatus, err := c.Register(burstySpec)
	must(err)
	if *useDSL {
		p := burstyStatus.Policy
		if p == nil || p.Type != controlplane.PolicyDSL {
			log.Fatalf("registered dsl policy not reported: %+v", p)
		}
		log.Printf("compiled %s policy for %s: %s (%s)", p.Class, burstyName, p.SourceHash, p.ClassReason)
	}
	log.Printf("registered tenants %s + %s (membership epoch %d -> %d)", steadyName, burstyName, gen0, mustGen(c))

	// Stream observations: steady within SLA, bursty far beyond it —
	// either one JSON POST per batch, or buffered frames on the one
	// long-lived binary stream.
	var ow *controlplane.ObservationWriter
	if *useStream {
		ow, err = c.Stream()
		must(err)
		log.Printf("binary observation stream open (POST /v1/stream)")
	}
	var sent int64
	stream := func(name string, lat float64) {
		if ow != nil {
			must(ow.Observe(name, monitor.MetricLatency, lat))
			must(ow.Observe(name, monitor.MetricLatency, lat))
			must(ow.Flush())
		} else {
			_, err := c.Observe(name, []controlplane.Observation{
				{Metric: monitor.MetricLatency, Value: lat},
				{Metric: monitor.MetricLatency, Value: lat},
			})
			must(err)
		}
		sent += 2
	}
	deadline := time.Now().Add(30 * time.Second)
	var bursty controlplane.AppStatus
	for {
		stream(steadyName, 0.3)
		stream(burstyName, 4.0)
		bursty, err = c.App(burstyName)
		must(err)
		if bursty.Adaptations > 0 && bursty.Level < 1 {
			break
		}
		if time.Now().After(deadline) {
			log.Fatalf("bursty never adapted: %+v", bursty)
		}
		time.Sleep(5 * time.Millisecond)
	}
	log.Printf("bursty adapted: level %.2f after %d ticks, %d fires (shedding %d%% of its work)",
		bursty.Level, bursty.Ticks, bursty.Fires, int(100*(1-bursty.Level)))

	if *useDSL {
		// Hot-swap the steering program live (PUT /v1/apps/{id}/policy):
		// the replacement pins the level to a recovery floor, and the
		// swap lands at a generation boundary without dropping the
		// tenant's pending observations, windows or totals.
		swapped, err := c.PutPolicy(burstyName, controlplane.PolicySpec{
			Type: controlplane.PolicyDSL,
			Source: `
aspectdef Recover
	apply
		do Set('level', 0.75);
	end
	condition violation > 0 end
end
`,
		})
		must(err)
		if swapped.Policy == nil || swapped.Policy.Swaps != 1 {
			log.Fatalf("hot-swap not recorded: %+v", swapped.Policy)
		}
		if swapped.Samples < bursty.Samples || swapped.Ticks < bursty.Ticks {
			log.Fatalf("hot-swap dropped history: samples %d->%d ticks %d->%d",
				bursty.Samples, swapped.Samples, bursty.Ticks, swapped.Ticks)
		}
		for {
			stream(burstyName, 4.0)
			st, err := c.App(burstyName)
			must(err)
			if st.Level == 0.75 {
				log.Printf("policy hot-swapped live: %s now holds level %.2f (swap #%d, no observations dropped)",
					burstyName, st.Level, swapped.Policy.Swaps)
				break
			}
			if time.Now().After(deadline) {
				log.Fatalf("swapped policy never took over: %+v", st)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Live detach: steady leaves while epochs keep flowing. In stream
	// mode, close the stream first — Close returns only after the
	// server has consumed every flushed frame, so no in-flight steady
	// frame can race the detach (a frame for a detached app would kill
	// the stream with 404) — then reopen for the survivor.
	var acked int64
	if ow != nil {
		ack, err := ow.Close()
		must(err)
		acked += ack.Accepted
		ow, err = c.Stream()
		must(err)
	}
	ep0, err := c.Epochs()
	must(err)
	must(c.Detach(steadyName))
	// Watch the settle and the survivor's progress over the server-sent
	// epoch event feed (GET /v1/epochs/stream) instead of polling
	// /v1/epochs: each event carries the full EpochsStatus, so one
	// subscription covers the generation settling AND the survivor's
	// epochs advancing.
	settleCtx, settleCancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer settleCancel()
	var last controlplane.EpochsStatus
	err = c.StreamEpochs(settleCtx, 5*time.Millisecond, func(ep controlplane.EpochsStatus) bool {
		last = ep
		if ep.ServedGeneration != ep.Generation {
			return true // membership change not yet served
		}
		if ep.Epochs < ep0.Epochs+10 || ep.TotalsPerApp[burstyName] <= ep0.TotalsPerApp[burstyName] {
			stream(burstyName, 4.0)
			return true // survivor still warming through the roll
		}
		return false // settled and progressing: done watching
	})
	if err != nil {
		log.Fatalf("epoch event stream ended early (last %+v): %v", last, err)
	}
	if _, err := c.App(steadyName); !controlplane.IsNotFound(err) {
		log.Fatalf("detached tenant still served: %v", err)
	}
	if last.TotalsPerApp[steadyName] <= 0 {
		log.Fatal("steady's cumulative totals were dropped on detach")
	}
	log.Printf("%s detached live at epoch %d; %s kept running: epoch %d, %.1f GFLOP total, %.1f J (watched over SSE)",
		steadyName, ep0.Epochs, burstyName, last.Epochs, last.TotalsPerApp[burstyName], last.EnergyJ)
	if ow != nil {
		// End the second stream and reconcile the servers' acks (both
		// streams) with what was sent — the streamed path's delivery
		// assertion.
		ack, err := ow.Close()
		must(err)
		acked += ack.Accepted
		if acked != sent {
			log.Fatalf("streams acked %d of %d sent samples", acked, sent)
		}
		log.Printf("streams closed: %d samples acked across both connections", acked)
	}
	fmt.Println("remote serving demo: OK")
}

// selfHost spins up the whole serving stack in-process: cluster,
// manager, kernel (started empty) and the control plane on a loopback
// listener — the same wiring as cmd/antarex-serve, minus the process.
func selfHost() (base string, shutdown func()) {
	rng := simhpc.NewRNG(7)
	cluster := simhpc.NewCluster(4, 22, func(i int) *simhpc.Node {
		return simhpc.HomogeneousNode(fmt.Sprintf("n%d", i), 0.1, rng)
	})
	kernel := runtime.NewKernel(rtrm.NewManager(cluster, cluster.FacilityPowerW(1)*0.9))
	ctx, cancel := context.WithCancel(context.Background())
	if err := kernel.Start(ctx, runtime.Options{Flush: 5 * time.Millisecond}); err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: controlplane.NewServer(kernel)}
	go func() { _ = srv.Serve(ln) }()
	return "http://" + ln.Addr().String(), func() {
		_ = srv.Close()
		cancel()
		kernel.Stop()
	}
}

func mustGen(c *controlplane.Client) int64 {
	h, err := c.Health()
	must(err)
	return h.Generation
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
