// Quickstart: the ANTAREX tool flow of Fig. 1 in ~80 lines.
//
// A miniC kernel plus three DSL aspects (the paper's Figs. 2-4) are
// woven, split-compiled, and run: profiling instrumentation feeds the
// runtime monitor, and dynamic weaving specializes the kernel for the
// hot problem size observed at run time.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dsl/interp"
	"repro/internal/ir"
)

const cSource = `
double kernel(double* data, int size) {
    double s = 0.0;
    for (int i = 0; i < size; i++) {
        s = s + data[i] * data[i];
    }
    return s;
}

double run(double* data, int size, int reps) {
    double acc = 0.0;
    for (int r = 0; r < reps; r++) {
        acc = acc + kernel(data, size);
    }
    return acc;
}
`

const aspects = `
aspectdef ProfileArguments
	input funcName end
	select fCall end
	apply
		insert before %{profile_args('[[funcName]]',
			[[$fCall.location]], [[$fCall.argList]]);
		}%;
	end
	condition $fCall.name == funcName end
end

aspectdef UnrollInnermostLoops
	input $func, threshold end
	select $func.loop{type=='for'} end
	apply
		do LoopUnroll('full');
	end
	condition
		$loop.isInnermost && $loop.numIter <= threshold
	end
end

aspectdef SpecializeKernel
	input lowT, highT end
	call spCall: PrepareSpecialize('kernel','size');
	select fCall{'kernel'}.arg{'size'} end
	apply dynamic
		call spOut : Specialize($fCall, $arg.name, $arg.runtimeValue);
		call UnrollInnermostLoops(spOut.$func, $arg.runtimeValue);
		call AddVersion(spCall, spOut.$func, $arg.runtimeValue);
	end
	condition
		$arg.runtimeValue >= lowT && $arg.runtimeValue <= highT
	end
end
`

func main() {
	// Design time: functional description + extra-functional strategies.
	tf, err := core.NewToolFlow("app.c", cSource, aspects)
	if err != nil {
		log.Fatal(err)
	}
	must(tf.WeaveAspect("ProfileArguments", interp.Str("kernel")))
	must(tf.WeaveAspect("SpecializeKernel", interp.Num(4), interp.Num(64)))
	fmt.Println("---- woven source ----")
	fmt.Println(tf.Source())

	// Deploy time: split compilation, runtime hooks armed.
	must(tf.Compile())

	// Run time: the application executes; monitors collect; the dynamic
	// apply specializes kernel for the hot size.
	buf := make([]float64, 32)
	for i := range buf {
		buf[i] = float64(i % 5)
	}
	v, err := tf.Invoke("run", ir.PtrValue(buf), ir.NumValue(32), ir.NumValue(8))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("run(buf, 32, 8) = %g\n", v.Num)
	fmt.Printf("profiled kernel calls: %d\n", tf.Metrics.Window("calls").Total())
	fmt.Printf("simulated cycles (first invocation): %.0f\n", tf.Metrics.Window("cycles").Mean())

	spName := ir.SpecializedName("kernel", "size", 32)
	if _, ok := tf.Split.Mod.Funcs[spName]; ok {
		fmt.Printf("dynamic weaving installed %s; variant hits: %d\n",
			spName, tf.Split.Mod.Variants["kernel"].Entries[0].Hits)
	}

	// Compare against a plain (unwoven) build of the same program: the
	// specialized pipeline is cheaper even counting the profiling probes.
	plain, err := core.NewToolFlow("app.c", cSource, aspects)
	must(err)
	must(plain.Compile())
	p0 := plain.VM.Cycles
	if _, err := plain.Invoke("run", ir.PtrValue(buf), ir.NumValue(32), ir.NumValue(8)); err != nil {
		log.Fatal(err)
	}
	genericCycles := plain.VM.Cycles - p0
	s0 := tf.VM.Cycles
	if _, err := tf.Invoke("run", ir.PtrValue(buf), ir.NumValue(32), ir.NumValue(8)); err != nil {
		log.Fatal(err)
	}
	specializedCycles := tf.VM.Cycles - s0
	fmt.Printf("steady state: generic %d cycles vs specialized %d cycles (%.2fx faster)\n",
		genericCycles, specializedCycles, float64(genericCycles)/float64(specializedCycles))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
