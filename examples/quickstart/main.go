// Quickstart: the ANTAREX tool flow of Fig. 1, end to end.
//
// A miniC kernel plus three DSL aspects (the paper's Figs. 2-4) are
// woven, split-compiled, and run: profiling instrumentation feeds the
// runtime monitor, and dynamic weaving specializes the kernel for the
// hot problem size observed at run time. Finally the application runs
// under the concurrent adaptation kernel (internal/runtime), which
// couples its monitored cycle costs to the cluster-level RTRM — both
// Fig. 1 control loops in one flow.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dsl/interp"
	"repro/internal/ir"
	"repro/internal/monitor"
	"repro/internal/rtrm"
	"repro/internal/runtime"
	"repro/internal/simhpc"
)

const cSource = `
double kernel(double* data, int size) {
    double s = 0.0;
    for (int i = 0; i < size; i++) {
        s = s + data[i] * data[i];
    }
    return s;
}

double run(double* data, int size, int reps) {
    double acc = 0.0;
    for (int r = 0; r < reps; r++) {
        acc = acc + kernel(data, size);
    }
    return acc;
}
`

const aspects = `
aspectdef ProfileArguments
	input funcName end
	select fCall end
	apply
		insert before %{profile_args('[[funcName]]',
			[[$fCall.location]], [[$fCall.argList]]);
		}%;
	end
	condition $fCall.name == funcName end
end

aspectdef UnrollInnermostLoops
	input $func, threshold end
	select $func.loop{type=='for'} end
	apply
		do LoopUnroll('full');
	end
	condition
		$loop.isInnermost && $loop.numIter <= threshold
	end
end

aspectdef SpecializeKernel
	input lowT, highT end
	call spCall: PrepareSpecialize('kernel','size');
	select fCall{'kernel'}.arg{'size'} end
	apply dynamic
		call spOut : Specialize($fCall, $arg.name, $arg.runtimeValue);
		call UnrollInnermostLoops(spOut.$func, $arg.runtimeValue);
		call AddVersion(spCall, spOut.$func, $arg.runtimeValue);
	end
	condition
		$arg.runtimeValue >= lowT && $arg.runtimeValue <= highT
	end
end
`

func main() {
	// Design time: functional description + extra-functional strategies.
	tf, err := core.NewToolFlow("app.c", cSource, aspects)
	if err != nil {
		log.Fatal(err)
	}
	must(tf.WeaveAspect("ProfileArguments", interp.Str("kernel")))
	must(tf.WeaveAspect("SpecializeKernel", interp.Num(4), interp.Num(64)))
	fmt.Println("---- woven source ----")
	fmt.Println(tf.Source())

	// Deploy time: split compilation, runtime hooks armed.
	must(tf.Compile())

	// Run time: the application executes; monitors collect; the dynamic
	// apply specializes kernel for the hot size.
	buf := make([]float64, 32)
	for i := range buf {
		buf[i] = float64(i % 5)
	}
	v, err := tf.Invoke("run", ir.PtrValue(buf), ir.NumValue(32), ir.NumValue(8))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("run(buf, 32, 8) = %g\n", v.Num)
	fmt.Printf("profiled kernel calls: %d\n", tf.Metrics.Window("calls").Total())
	fmt.Printf("simulated cycles (first invocation): %.0f\n", tf.Metrics.Window("cycles").Mean())

	spName := ir.SpecializedName("kernel", "size", 32)
	if _, ok := tf.Split.Mod.Funcs[spName]; ok {
		fmt.Printf("dynamic weaving installed %s; variant hits: %d\n",
			spName, tf.Split.Mod.Variants["kernel"].Entries[0].Hits)
	}

	// Compare against a plain (unwoven) build of the same program: the
	// specialized pipeline is cheaper even counting the profiling probes.
	plain, err := core.NewToolFlow("app.c", cSource, aspects)
	must(err)
	must(plain.Compile())
	p0 := plain.VM.Cycles
	if _, err := plain.Invoke("run", ir.PtrValue(buf), ir.NumValue(32), ir.NumValue(8)); err != nil {
		log.Fatal(err)
	}
	genericCycles := plain.VM.Cycles - p0
	s0 := tf.VM.Cycles
	if _, err := tf.Invoke("run", ir.PtrValue(buf), ir.NumValue(32), ir.NumValue(8)); err != nil {
		log.Fatal(err)
	}
	specializedCycles := tf.VM.Cycles - s0
	fmt.Printf("steady state: generic %d cycles vs specialized %d cycles (%.2fx faster)\n",
		genericCycles, specializedCycles, float64(genericCycles)/float64(specializedCycles))

	// Run time, system side: the application attaches to the adaptation
	// kernel, which schedules its cycle cost as cluster work each epoch
	// — the RTRM control loop of Fig. 1 closing around the same app.
	rng := simhpc.NewRNG(3)
	cluster := simhpc.NewCluster(4, 22, func(i int) *simhpc.Node {
		return simhpc.HomogeneousNode(fmt.Sprintf("n%d", i), 0.1, rng)
	})
	kern := runtime.NewKernel(rtrm.NewManager(cluster, cluster.FacilityPowerW(1)*0.9))
	inbox := &runtime.Inbox{}
	var lastCycles float64
	ctl, err := kern.Attach(runtime.AppSpec{
		Name:   "quickstart",
		SLA:    monitor.SLA{}, // no goals: monitor-only
		Sensor: inbox,
		Workload: func() ([]*simhpc.Task, error) {
			// Map the app's simulated cycles to roofline task traffic,
			// split across the nodes (MS3 admission floors the task
			// count, so a single task could be deferred forever).
			tasks := make([]*simhpc.Task, 4)
			for i := range tasks {
				tasks[i] = &simhpc.Task{GFlop: lastCycles / 4e4, MemGB: lastCycles / 1.2e6}
			}
			return tasks, nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	for epoch := 0; epoch < 8; epoch++ {
		before := tf.VM.Cycles
		if _, err := tf.Invoke("run", ir.PtrValue(buf), ir.NumValue(32), ir.NumValue(8)); err != nil {
			log.Fatal(err)
		}
		lastCycles = float64(tf.VM.Cycles - before)
		inbox.Push("cycles", lastCycles)
		if _, err := kern.RunEpoch(60); err != nil {
			log.Fatal(err)
		}
	}
	stats := kern.ManagerStats()
	fmt.Printf("adaptation kernel: %d epochs, %.2f GFLOP offered, %.2f GFLOP done, %.2f J, mean cycles %.0f\n",
		kern.Epochs(), kern.TotalsPerApp()["quickstart"], stats.WorkGFlop,
		stats.EnergyJ, ctl.Metrics().Window("cycles").Mean())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
