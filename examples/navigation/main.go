// Navigation: use case 2 of the paper (§VII-b) — a self-adaptive
// navigation server for smart cities. Under a request storm the adaptive
// server lowers its routing fidelity to hold the latency SLA, then
// recovers; the fixed server violates the SLA for the storm's duration.
//
//	go run ./examples/navigation
package main

import (
	"fmt"

	"repro/internal/apps/nav"
)

func main() {
	fmt.Println("ANTAREX use case 2: self-adaptive navigation server")
	fmt.Println("city: 24x24 grid, 3x3 districts, diurnal traffic; SLA: p95 latency <= 0.5s")
	fmt.Println("storm: 2 req/s base -> 60 req/s peak between t=600s and t=2400s")
	fmt.Println()

	load := nav.StormProfile(2, 60, 600, 2400)
	mk := func(adaptive bool) *nav.Server {
		g := nav.NewGraph(24, 24, 3, 7)
		s := nav.NewServer(g, 3000, 0.5, 99)
		s.Adaptive = adaptive
		return s
	}

	fixedSrv := mk(false)
	fixed := nav.Campaign(fixedSrv, 50, 60, load, 40)
	adaptiveSrv := mk(true)
	adaptive := nav.Campaign(adaptiveSrv, 50, 60, load, 40)

	fmt.Println("adaptive server epoch trace (every 5th epoch):")
	for i, st := range adaptive {
		if i%5 == 0 {
			fmt.Printf("  %s\n", st)
		}
	}
	fmt.Println()
	fmt.Printf("%-10s violations=%2d/50  mean quality=%.3f\n", "fixed:", nav.Violations(fixed), nav.MeanQuality(fixed))
	fmt.Printf("%-10s violations=%2d/50  mean quality=%.3f  knob moves=%d\n",
		"adaptive:", nav.Violations(adaptive), nav.MeanQuality(adaptive), adaptiveSrv.Adaptations)
}
