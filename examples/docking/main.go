// Docking: use case 1 of the paper (§VII-a) — computer-accelerated drug
// discovery with unpredictable per-ligand cost. Compares static
// partitioning against the dynamic load balancing the paper calls for,
// across tail heaviness and worker counts.
//
//	go run ./examples/docking
package main

import "fmt"

import "repro/internal/apps/dock"

func main() {
	fmt.Println("ANTAREX use case 1: drug-discovery docking, 400 ligands, heavy-tailed cost")
	fmt.Println()
	for _, alpha := range []float64{1.2, 1.4, 1.8} {
		fmt.Printf("Pareto tail alpha=%.1f (smaller = heavier tail / worse imbalance)\n", alpha)
		rows := dock.Campaign(8, 400, alpha, 42)
		for _, r := range rows {
			fmt.Printf("  %s\n", r)
		}
		static, dynamic := rows[0], rows[1]
		fmt.Printf("  -> dynamic balancing cuts makespan %.2fx and energy %.2fx\n\n",
			static.MakespanS/dynamic.MakespanS, static.EnergyJ/dynamic.EnergyJ)
	}

	fmt.Println("Scaling workers at alpha=1.4:")
	for _, workers := range []int{4, 8, 16, 32} {
		rows := dock.Campaign(workers, 400, 1.4, 42)
		static, dynamic := rows[0], rows[1]
		fmt.Printf("  %2d workers: static %6.2fs  dynamic %6.2fs  speedup %.2fx\n",
			workers, static.MakespanS, dynamic.MakespanS, static.MakespanS/dynamic.MakespanS)
	}
}
