// Batchsched: the RTRM's job-dispatching knob (§V) and the
// multi-objective operating-point view. A 120-job trace runs under
// FCFS, EASY backfilling and energy-aware placement on a cluster with
// 15% manufacturing variability; then the DVFS Pareto frontier is built
// for each workload class and an SLA picks the operating point.
//
//	go run ./examples/batchsched
package main

import (
	"fmt"

	"repro/internal/autotune"
	"repro/internal/rtrm"
	"repro/internal/simhpc"
)

func main() {
	fmt.Println("ANTAREX RTRM: batch dispatching on a 16-node cluster (15% part variability)")
	mkCluster := func() *simhpc.Cluster {
		rng := simhpc.NewRNG(51)
		return simhpc.NewCluster(16, 20, func(int) *simhpc.Node {
			return simhpc.HomogeneousNode("n", 0.15, rng)
		})
	}
	jobs := rtrm.RandomJobMix(120, 16, simhpc.NewRNG(3))
	fmt.Printf("trace: %d jobs, up to 16 nodes each\n\n", len(jobs))
	for _, policy := range []rtrm.DispatchPolicy{rtrm.FCFS, rtrm.EASY, rtrm.EnergyAwareEASY} {
		res := rtrm.Dispatch(policy, mkCluster(), jobs)
		fmt.Printf("  %s\n", res)
	}

	fmt.Println("\nDVFS operating-point frontier (time vs energy) per workload class:")
	gen := simhpc.NewWorkloadGen(7)
	classes := []struct {
		name string
		task *simhpc.Task
	}{
		{"memory-bound", gen.MemoryBound(100)},
		{"balanced", gen.Balanced(100)},
		{"compute-bound", gen.ComputeBound(100)},
	}
	d := simhpc.NewDevice(simhpc.XeonCPUSpec(), "cpu", 0, nil)
	space := autotune.NewSpace(autotune.IntKnob("pstate", 0, 7, 1))
	for _, c := range classes {
		front := autotune.ExploreFront(space, func(cfg autotune.Config) autotune.MultiMeasurement {
			ps := int(cfg["pstate"])
			return autotune.MultiMeasurement{Objectives: map[string]float64{
				"time":   d.ExecTime(c.task, ps),
				"energy": d.ExecEnergy(c.task, ps),
			}}
		})
		fmt.Printf("\n  %s: %d Pareto-optimal operating points\n", c.name, front.Size())
		for _, m := range front.Members("time") {
			fmt.Printf("    pstate=%v  time=%6.3fs  energy=%6.1fJ\n",
				m.Point[0], m.M.Objectives["time"], m.M.Objectives["energy"])
		}
		tMax := d.ExecTime(c.task, d.Spec.MaxPState())
		for _, slack := range []float64{1.0, 1.3, 2.0} {
			if pick, ok := front.PickUnder("energy", "time", slack*tMax); ok {
				fmt.Printf("    SLA time<=%.1fx fastest -> pstate=%v (%.1fJ)\n",
					slack, pick.Point[0], pick.M.Objectives["energy"])
			}
		}
	}
}
