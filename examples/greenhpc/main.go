// GreenHPC: the system-wide RTRM story of paper §V — adaptive
// applications coupled to the runtime resource & power manager over the
// simulated cluster, through a simulated year of ambient temperature.
// MS3 defers load and boosts cooling in summer; the power capper holds
// the facility envelope; the thermal controller keeps nodes safe.
//
// The coupling runs through the concurrent adaptation kernel
// (internal/runtime): two adaptive applications attach their specs and
// the kernel multiplexes their epoch workloads into the one shared
// rtrm.Manager.
//
//	go run ./examples/greenhpc
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/autotune"
	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/rtrm"
	"repro/internal/runtime"
	"repro/internal/simhpc"
)

func main() {
	rng := simhpc.NewRNG(7)
	cluster := simhpc.NewCluster(16, 15, func(i int) *simhpc.Node {
		return simhpc.HeterogeneousNode(fmt.Sprintf("n%d", i), 0.15, rng)
	})
	capW := cluster.FacilityPowerW(1) * 0.85
	kern := runtime.NewKernel(rtrm.NewManager(cluster, capW))

	// App 1: batch HPC workload, batch-size knob; bigger batches
	// amortize better.
	space := autotune.NewSpace(autotune.IntKnob("batch", 1, 8, 1))
	cost := func(cfg autotune.Config) autotune.Measurement {
		return autotune.Measurement{Cost: 4 + 16/cfg["batch"]}
	}
	gen := simhpc.NewWorkloadGen(11)
	hpc := core.NewApp("hpcapp", space, monitor.SLA{}, &autotune.Exhaustive{}, cost)
	hpc.Workload = func(cfg autotune.Config) []*simhpc.Task {
		return gen.Mix(int(cfg["batch"])*8, 1, 2, 1, 15)
	}
	if err := hpc.TuneInitial(0); err != nil {
		log.Fatal(err)
	}

	// App 2: an analytics service with a parallelism knob; wider fans
	// out more, smaller tasks.
	aSpace := autotune.NewSpace(autotune.IntKnob("width", 1, 4, 1))
	aCost := func(cfg autotune.Config) autotune.Measurement {
		return autotune.Measurement{Cost: 8 / cfg["width"]}
	}
	aGen := simhpc.NewWorkloadGen(12)
	analytics := core.NewApp("analytics", aSpace, monitor.SLA{}, &autotune.Exhaustive{}, aCost)
	analytics.Workload = func(cfg autotune.Config) []*simhpc.Task {
		w := int(cfg["width"])
		return aGen.Mix(w*4, 2, 1, 1, 30/float64(w))
	}
	if err := analytics.TuneInitial(0); err != nil {
		log.Fatal(err)
	}

	for _, app := range []*core.App{hpc, analytics} {
		if _, err := kern.Attach(app.Spec()); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("tuned configurations: hpcapp batch=%v, analytics width=%v\n",
		hpc.Config()["batch"], analytics.Config()["width"])
	fmt.Printf("cluster: 16 heterogeneous nodes, facility cap %.0f kW, %d apps on one kernel\n\n",
		capW/1000, len(kern.Apps()))

	mgr := kern.Manager()
	fmt.Println("month  ambient  PUE    admit%  hot  energy(MJ)  eff(GFLOP/J)")
	for month := 0; month < 12; month++ {
		// Sinusoidal seasonal ambient: 8C in January, 32C in July.
		cluster.AmbientC = 20 - 12*math.Cos(2*math.Pi*float64(month)/12)
		var monthEnergy float64
		var plan float64
		hot := 0
		for epoch := 0; epoch < 30; epoch++ {
			res, err := kern.RunEpoch(3600)
			if err != nil {
				log.Fatal(err)
			}
			monthEnergy += res.Report.EnergyJ
			plan = res.Report.Plan.AdmitFraction
			hot += res.Report.HotNodes
		}
		fmt.Printf("%5d  %6.1fC  %.3f  %5.0f%%  %3d  %10.2f  %11.4f\n",
			month+1, cluster.AmbientC, cluster.PUE(), plan*100, hot,
			monthEnergy/1e6, mgr.EfficiencyGFLOPSPerJ())
	}
	totals := kern.TotalsPerApp()
	fmt.Printf("\nper-app work: hpcapp %.1f TFLOP, analytics %.1f TFLOP\n",
		totals["hpcapp"]/1000, totals["analytics"]/1000)
	fmt.Printf("totals: %.1f TFLOP done, %.1f MJ, %d thermal events, %d cap demotions over %d epochs\n",
		mgr.WorkGFlop/1000, mgr.EnergyJ/1e6, mgr.ThermalEvents, mgr.CapDemotions, kern.Epochs())
}
