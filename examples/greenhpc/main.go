// GreenHPC: the system-wide RTRM story of paper §V — an adaptive
// application coupled to the runtime resource & power manager over the
// simulated cluster, through a simulated year of ambient temperature.
// MS3 defers load and boosts cooling in summer; the power capper holds
// the facility envelope; the thermal controller keeps nodes safe.
//
//	go run ./examples/greenhpc
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/autotune"
	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/simhpc"
)

func main() {
	rng := simhpc.NewRNG(7)
	cluster := simhpc.NewCluster(16, 15, func(i int) *simhpc.Node {
		return simhpc.HeterogeneousNode(fmt.Sprintf("n%d", i), 0.15, rng)
	})
	capW := cluster.FacilityPowerW(1) * 0.85
	sys := core.NewSystem(cluster, capW)

	// One adaptive app: batch size knob, bigger batches amortize better.
	space := autotune.NewSpace(autotune.IntKnob("batch", 1, 8, 1))
	cost := func(cfg autotune.Config) autotune.Measurement {
		return autotune.Measurement{Cost: 4 + 16/cfg["batch"]}
	}
	gen := simhpc.NewWorkloadGen(11)
	app := core.NewApp("hpcapp", space, monitor.SLA{}, &autotune.Exhaustive{}, cost)
	app.Workload = func(cfg autotune.Config) []*simhpc.Task {
		return gen.Mix(int(cfg["batch"])*8, 1, 2, 1, 15)
	}
	if err := app.TuneInitial(0); err != nil {
		log.Fatal(err)
	}
	sys.AddApp(app)
	fmt.Printf("tuned configuration: batch=%v\n", app.Config()["batch"])
	fmt.Printf("cluster: 16 heterogeneous nodes, facility cap %.0f kW\n\n", capW/1000)

	fmt.Println("month  ambient  PUE    admit%  hot  energy(MJ)  eff(GFLOP/J)")
	for month := 0; month < 12; month++ {
		// Sinusoidal seasonal ambient: 8C in January, 32C in July.
		cluster.AmbientC = 20 - 12*math.Cos(2*math.Pi*float64(month)/12)
		var monthEnergy float64
		var plan float64
		hot := 0
		for epoch := 0; epoch < 30; epoch++ {
			res, err := sys.RunEpoch(3600)
			if err != nil {
				log.Fatal(err)
			}
			monthEnergy += res.Report.EnergyJ
			plan = res.Report.Plan.AdmitFraction
			hot += res.Report.HotNodes
		}
		fmt.Printf("%5d  %6.1fC  %.3f  %5.0f%%  %3d  %10.2f  %11.4f\n",
			month+1, cluster.AmbientC, cluster.PUE(), plan*100, hot,
			monthEnergy/1e6, sys.Manager.EfficiencyGFLOPSPerJ())
	}
	fmt.Printf("\ntotals: %.1f TFLOP done, %.1f MJ, %d thermal events, %d cap demotions\n",
		sys.Manager.WorkGFlop/1000, sys.Manager.EnergyJ/1e6,
		sys.Manager.ThermalEvents, sys.Manager.CapDemotions)
}
