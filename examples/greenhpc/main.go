// GreenHPC: the system-wide RTRM story of paper §V, scaled out to two
// sites — adaptive applications coupled to per-site runtime resource &
// power managers over simulated clusters, through a simulated year of
// ambient temperature. Each site runs its own rtrm.Manager (MS3 defers
// load and boosts cooling in its summer; the power capper holds the
// facility envelope; the thermal controller keeps nodes safe), and one
// adaptation kernel routes every app's epoch batches to a site through
// the SLA-aware placement policy.
//
// "alpine" stays below the free-cooling knee most of the year;
// "desert" blows past it in summer and starts deferring work. When the
// desert site's deferred fraction persists above the placement goal,
// the kernel migrates an app off it at a membership-generation
// boundary — watch the placement column flip mid-year.
//
//	go run ./examples/greenhpc
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/autotune"
	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/rtrm"
	"repro/internal/runtime"
	"repro/internal/simhpc"
)

// site is one geography: its cluster, its manager, its seasonal
// ambient model.
type site struct {
	name    string
	cluster *simhpc.Cluster
	base    float64 // mean ambient (C)
	swing   float64 // seasonal half-amplitude (C)
}

// ambientAt returns the site ambient for a month (0 = January).
func (s *site) ambientAt(month int) float64 {
	return s.base - s.swing*math.Cos(2*math.Pi*float64(month)/12)
}

func main() {
	rng := simhpc.NewRNG(7)
	mkCluster := func(ambient float64) *simhpc.Cluster {
		return simhpc.NewCluster(8, ambient, func(i int) *simhpc.Node {
			return simhpc.HeterogeneousNode(fmt.Sprintf("n%d", i), 0.15, rng)
		})
	}
	sites := []*site{
		{name: "alpine", base: 10, swing: 8},  // 2C .. 18C: free cooling year-round
		{name: "desert", base: 28, swing: 12}, // 16C .. 40C: deep MS3 deferral in summer
	}
	kern := runtime.NewKernel()
	for _, s := range sites {
		s.cluster = mkCluster(s.ambientAt(0))
		mgr := rtrm.NewManager(s.cluster, s.cluster.FacilityPowerW(1)*0.85)
		if err := kern.AddBackend(s.name, mgr); err != nil {
			log.Fatal(err)
		}
	}
	// Steer apps off a site once it defers >10% of their work for a
	// few epochs running; migrations land at generation boundaries.
	kern.SetPlacement(&runtime.SLAAware{MaxDeferredFrac: 0.10, Patience: 6, Cooldown: 30})

	// App 1: batch HPC workload, batch-size knob; bigger batches
	// amortize better.
	space := autotune.NewSpace(autotune.IntKnob("batch", 1, 8, 1))
	cost := func(cfg autotune.Config) autotune.Measurement {
		return autotune.Measurement{Cost: 4 + 16/cfg["batch"]}
	}
	gen := simhpc.NewWorkloadGen(11)
	hpc := core.NewApp("hpcapp", space, monitor.SLA{}, &autotune.Exhaustive{}, cost)
	hpc.Workload = func(cfg autotune.Config) []*simhpc.Task {
		return gen.Mix(int(cfg["batch"])*8, 1, 2, 1, 15)
	}
	if err := hpc.TuneInitial(0); err != nil {
		log.Fatal(err)
	}

	// App 2: an analytics service with a parallelism knob; wider fans
	// out more, smaller tasks.
	aSpace := autotune.NewSpace(autotune.IntKnob("width", 1, 4, 1))
	aCost := func(cfg autotune.Config) autotune.Measurement {
		return autotune.Measurement{Cost: 8 / cfg["width"]}
	}
	aGen := simhpc.NewWorkloadGen(12)
	analytics := core.NewApp("analytics", aSpace, monitor.SLA{}, &autotune.Exhaustive{}, aCost)
	analytics.Workload = func(cfg autotune.Config) []*simhpc.Task {
		w := int(cfg["width"])
		return aGen.Mix(w*4, 2, 1, 1, 30/float64(w))
	}
	if err := analytics.TuneInitial(0); err != nil {
		log.Fatal(err)
	}

	for _, app := range []*core.App{hpc, analytics} {
		if _, err := kern.Attach(app.Spec()); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("tuned configurations: hpcapp batch=%v, analytics width=%v\n",
		hpc.Config()["batch"], analytics.Config()["width"])
	fmt.Printf("2 sites × 8 heterogeneous nodes, one kernel, SLA-aware placement (goal: <10%% deferred)\n\n")

	fmt.Println("month  alpine   desert   hpcapp@   analytics@  defer%(desert)  energy(MJ)")
	for month := 0; month < 12; month++ {
		for _, s := range sites {
			s.cluster.AmbientC = s.ambientAt(month)
		}
		var monthEnergy, desertDefer, desertOffered float64
		for epoch := 0; epoch < 30; epoch++ {
			res, err := kern.RunEpoch(3600)
			if err != nil {
				log.Fatal(err)
			}
			monthEnergy += res.Report.EnergyJ
			for _, be := range res.Backends {
				if be.Name == "desert" {
					desertDefer += be.Report.DeferredGFlop
					desertOffered += be.Report.DeferredGFlop + be.Report.DoneGFlop
				}
			}
		}
		deferPct := 0.0
		if desertOffered > 0 {
			deferPct = desertDefer / desertOffered * 100
		}
		fmt.Printf("%5d  %5.1fC   %5.1fC   %-9s %-11s %13.1f%%  %10.2f\n",
			month+1, sites[0].cluster.AmbientC, sites[1].cluster.AmbientC,
			kern.AppBackend("hpcapp"), kern.AppBackend("analytics"),
			deferPct, monthEnergy/1e6)
	}

	totals := kern.TotalsPerApp()
	fmt.Printf("\nper-app work: hpcapp %.1f TFLOP, analytics %.1f TFLOP\n",
		totals["hpcapp"]/1000, totals["analytics"]/1000)
	merged := kern.ManagerStats()
	fmt.Printf("fleet totals: %.1f TFLOP done, %.1f TFLOP deferred, %.1f MJ, %d thermal events, %d cap demotions over %d epochs\n",
		merged.WorkGFlop/1000, merged.DeferredGFlop/1000, merged.EnergyJ/1e6,
		merged.ThermalEvents, merged.CapDemotions, kern.Epochs())
	for _, st := range kern.BackendStats() {
		eff := 0.0
		if st.EnergyJ > 0 {
			eff = st.WorkGFlop / st.EnergyJ
		}
		fmt.Printf("  %-7s %4d epochs  %8.1f GFLOP done  %8.1f deferred  %7.2f MJ  eff %.4f GFLOP/J\n",
			st.Name, st.Epochs, st.WorkGFlop, st.DeferredGFlop, st.EnergyJ/1e6, eff)
	}
}
