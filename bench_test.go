// Package repro's benchmark harness regenerates every figure and
// quantitative claim of the ANTAREX DATE'16 paper. Each benchmark prints
// the series the paper reports (via b.Logf and ReportMetric), so
// `go test -bench=. -benchmem` doubles as the experiment record; see
// EXPERIMENTS.md for the paper-vs-measured index.
//
// Experiment IDs (DESIGN.md): F1-F4 figures, C1-C5 quantitative claims,
// U1-U2 use cases, A1-A3 approach benchmarks.
package repro

import (
	"context"
	"fmt"
	"math"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/apps/dock"
	"repro/internal/apps/nav"
	"repro/internal/autotune"
	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/dsl/interp"
	"repro/internal/durable"
	"repro/internal/ir"
	"repro/internal/monitor"
	"repro/internal/policyc"
	"repro/internal/precision"
	"repro/internal/rtrm"
	kernelrt "repro/internal/runtime"
	"repro/internal/simhpc"
	"repro/internal/srcmodel"
	"repro/internal/weaver"
)

const benchKernelSrc = `
double kernel(double* data, int size) {
    double s = 0.0;
    for (int i = 0; i < size; i++) {
        s = s + data[i] * data[i];
    }
    return s;
}

double run(double* data, int size, int reps) {
    double acc = 0.0;
    for (int r = 0; r < reps; r++) {
        acc = acc + kernel(data, size);
    }
    return acc;
}
`

const benchAspects = `
aspectdef ProfileArguments
	input funcName end
	select fCall end
	apply
		insert before %{profile_args('[[funcName]]',
			[[$fCall.location]], [[$fCall.argList]]);
		}%;
	end
	condition $fCall.name == funcName end
end

aspectdef UnrollInnermostLoops
	input $func, threshold end
	select $func.loop{type=='for'} end
	apply
		do LoopUnroll('full');
	end
	condition
		$loop.isInnermost && $loop.numIter <= threshold
	end
end

aspectdef SpecializeKernel
	input lowT, highT end
	call spCall: PrepareSpecialize('kernel','size');
	select fCall{'kernel'}.arg{'size'} end
	apply dynamic
		call spOut : Specialize($fCall, $arg.name, $arg.runtimeValue);
		call UnrollInnermostLoops(spOut.$func, $arg.runtimeValue);
		call AddVersion(spCall, spOut.$func, $arg.runtimeValue);
	end
	condition
		$arg.runtimeValue >= lowT && $arg.runtimeValue <= highT
	end
end
`

func benchBuf(n int) []float64 {
	buf := make([]float64, n)
	for i := range buf {
		buf[i] = float64(i%9) * 0.5
	}
	return buf
}

// BenchmarkFig1ToolFlow (F1) drives the full Fig. 1 pipeline — weave,
// split-compile, run with monitoring + dynamic specialization — and
// reports simulated cycles per application call, woven vs plain.
func BenchmarkFig1ToolFlow(b *testing.B) {
	build := func(weaveAll bool) *core.ToolFlow {
		tf, err := core.NewToolFlow("app.c", benchKernelSrc, benchAspects)
		if err != nil {
			b.Fatal(err)
		}
		if weaveAll {
			if err := tf.WeaveAspect("ProfileArguments", interp.Str("kernel")); err != nil {
				b.Fatal(err)
			}
			if err := tf.WeaveAspect("SpecializeKernel", interp.Num(4), interp.Num(64)); err != nil {
				b.Fatal(err)
			}
		}
		if err := tf.Compile(); err != nil {
			b.Fatal(err)
		}
		return tf
	}
	buf := benchBuf(32)
	for _, cfg := range []struct {
		name  string
		weave bool
	}{{"plain", false}, {"antarex", true}} {
		b.Run(cfg.name, func(b *testing.B) {
			tf := build(cfg.weave)
			// Warm the dynamic specializer.
			if _, err := tf.Invoke("run", ir.PtrValue(buf), ir.NumValue(32), ir.NumValue(2)); err != nil {
				b.Fatal(err)
			}
			start := tf.VM.Cycles
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tf.Invoke("run", ir.PtrValue(buf), ir.NumValue(32), ir.NumValue(1)); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(tf.VM.Cycles-start)/float64(b.N), "simcycles/call")
		})
	}
}

// BenchmarkFig2ProfileArguments (F2) weaves the Fig. 2 profiling aspect
// and reports the instrumentation overhead in simulated cycles.
func BenchmarkFig2ProfileArguments(b *testing.B) {
	run := func(b *testing.B, profile bool) float64 {
		tf, err := core.NewToolFlow("app.c", benchKernelSrc, benchAspects)
		if err != nil {
			b.Fatal(err)
		}
		if profile {
			if err := tf.WeaveAspect("ProfileArguments", interp.Str("kernel")); err != nil {
				b.Fatal(err)
			}
		}
		if err := tf.Compile(); err != nil {
			b.Fatal(err)
		}
		buf := benchBuf(16)
		start := tf.VM.Cycles
		for i := 0; i < b.N; i++ {
			if _, err := tf.Invoke("run", ir.PtrValue(buf), ir.NumValue(16), ir.NumValue(4)); err != nil {
				b.Fatal(err)
			}
		}
		if profile {
			calls := tf.Metrics.Window("calls")
			if calls == nil || calls.Total() != int64(4*b.N) {
				b.Fatalf("profile records: %v, want %d", calls, 4*b.N)
			}
		}
		return float64(tf.VM.Cycles-start) / float64(b.N)
	}
	var plain, profiled float64
	b.Run("plain", func(b *testing.B) {
		plain = run(b, false)
		b.ReportMetric(plain, "simcycles/call")
	})
	b.Run("profiled", func(b *testing.B) {
		profiled = run(b, true)
		b.ReportMetric(profiled, "simcycles/call")
		if plain > 0 {
			b.ReportMetric(profiled/plain-1, "overhead_frac")
		}
	})
}

// BenchmarkFig3LoopUnroll (F3) applies the Fig. 3 aspect at several
// thresholds and reports the speedup full unrolling buys on a
// fixed-trip-count kernel.
func BenchmarkFig3LoopUnroll(b *testing.B) {
	src := `
double fixed16(double* a) {
    double s = 0.0;
    for (int i = 0; i < 16; i++) {
        s = s + a[i] * a[i];
    }
    return s;
}
`
	for _, threshold := range []float64{4, 16, 64} {
		b.Run(fmt.Sprintf("threshold=%g", threshold), func(b *testing.B) {
			prog, err := srcmodel.Parse("f.c", src)
			if err != nil {
				b.Fatal(err)
			}
			w := weaver.New(prog)
			fnJP := interp.JP(weaverFunctionJP(w, "fixed16"))
			if _, err := w.Weave(benchAspects, "UnrollInnermostLoops", fnJP, interp.Num(threshold)); err != nil {
				b.Fatal(err)
			}
			sc, vm, err := w.CompileRuntime()
			if err != nil {
				b.Fatal(err)
			}
			_ = sc
			buf := benchBuf(16)
			start := vm.Cycles
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := vm.Call("fixed16", ir.PtrValue(buf)); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(vm.Cycles-start)/float64(b.N), "simcycles/call")
			unrolled := 0.0
			if len(srcmodel.Loops(w.Prog.Func("fixed16"))) == 0 {
				unrolled = 1
			}
			b.ReportMetric(unrolled, "unrolled")
		})
	}
}

func weaverFunctionJP(w *weaver.Weaver, name string) interp.JoinPoint {
	for _, jp := range w.Roots("function") {
		if jp.Name() == name {
			return jp
		}
	}
	return nil
}

// BenchmarkFig4SpecializeKernel (F4) measures the dynamic-weaving win:
// generic vs runtime-specialized execution through the same call site.
func BenchmarkFig4SpecializeKernel(b *testing.B) {
	for _, mode := range []string{"generic", "specialized"} {
		b.Run(mode, func(b *testing.B) {
			prog, err := srcmodel.Parse("app.c", benchKernelSrc)
			if err != nil {
				b.Fatal(err)
			}
			w := weaver.New(prog)
			if mode == "specialized" {
				if _, err := w.Weave(benchAspects, "SpecializeKernel", interp.Num(4), interp.Num(64)); err != nil {
					b.Fatal(err)
				}
			}
			sc, vm, err := w.CompileRuntime()
			if err != nil {
				b.Fatal(err)
			}
			buf := benchBuf(24)
			// Warm-up triggers specialization.
			if _, err := vm.Call("run", ir.PtrValue(buf), ir.NumValue(24), ir.NumValue(2)); err != nil {
				b.Fatal(err)
			}
			start := vm.Cycles
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := vm.Call("kernel", ir.PtrValue(buf), ir.NumValue(24)); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(vm.Cycles-start)/float64(b.N), "simcycles/call")
			if mode == "specialized" {
				vt := sc.Mod.Variants["kernel"]
				if vt == nil || vt.Entries[0].Hits == 0 {
					b.Fatal("variant table unused")
				}
				b.ReportMetric(float64(vt.Entries[0].Hits), "variant_hits")
			}
		})
	}
}

// BenchmarkClaimHeteroEfficiency (C1) regenerates the §I efficiency
// comparison: heterogeneous ≈ 7 032 vs homogeneous ≈ 2 304 MFLOPS/W,
// a ≈3x ratio.
func BenchmarkClaimHeteroEfficiency(b *testing.B) {
	var het, hom float64
	for i := 0; i < b.N; i++ {
		hetN := simhpc.HeterogeneousNode("h", 0, nil)
		homN := simhpc.HomogeneousNode("o", 0, nil)
		het = hetN.EfficiencyGFLOPSPerW() * 1000
		hom = homN.EfficiencyGFLOPSPerW() * 1000
	}
	b.ReportMetric(het, "hetero_MFLOPS/W")
	b.ReportMetric(hom, "homog_MFLOPS/W")
	b.ReportMetric(het/hom, "ratio")
	b.Logf("C1: heterogeneous %.0f MFLOPS/W vs homogeneous %.0f MFLOPS/W (paper: 7032 vs 2304), ratio %.2fx (paper: ~3x)", het, hom, het/hom)
}

// BenchmarkClaimComponentVariability (C2) regenerates the §V claim:
// instances of the same nominal component vary ≈15 % in energy.
func BenchmarkClaimComponentVariability(b *testing.B) {
	var spread float64
	for i := 0; i < b.N; i++ {
		rng := simhpc.NewRNG(42)
		task := &simhpc.Task{GFlop: 100, MemGB: 2}
		min, max, sum := 0.0, 0.0, 0.0
		const n = 64
		for k := 0; k < n; k++ {
			d := simhpc.NewDevice(simhpc.XeonCPUSpec(), "d", 0.15, rng)
			e := d.ExecEnergy(task, d.Spec.MaxPState())
			if k == 0 || e < min {
				min = e
			}
			if e > max {
				max = e
			}
			sum += e
		}
		spread = (max - min) / (sum / n)
	}
	b.ReportMetric(spread*100, "energy_spread_%")
	b.Logf("C2: energy spread across 64 instances of the same CPU: %.1f%% (paper: 15%%)", spread*100)
}

// BenchmarkClaimGovernorSavings (C3) regenerates the §V claim: optimal
// operating-point selection saves 18-50 % node energy vs the Linux
// default governor, depending on the application.
func BenchmarkClaimGovernorSavings(b *testing.B) {
	gen := simhpc.NewWorkloadGen(3)
	apps := []struct {
		name  string
		tasks []*simhpc.Task
	}{
		{"memory-bound", []*simhpc.Task{gen.MemoryBound(100), gen.MemoryBound(60)}},
		{"balanced", []*simhpc.Task{gen.Balanced(100), gen.Balanced(60)}},
		{"compute-bound", []*simhpc.Task{gen.ComputeBound(100), gen.ComputeBound(60)}},
	}
	for _, app := range apps {
		b.Run(app.name, func(b *testing.B) {
			var saving float64
			for i := 0; i < b.N; i++ {
				d := simhpc.NewDevice(simhpc.XeonCPUSpec(), "d", 0, nil)
				_, _, saving = rtrm.GovernorSavings(d, app.tasks, 0)
			}
			b.ReportMetric(saving*100, "energy_saving_%")
			b.Logf("C3 %s: optimal vs Linux-default governor saves %.1f%% (paper: 18-50%%)", app.name, saving*100)
		})
	}
}

// BenchmarkClaimSeasonalPUE (C4) regenerates the §V claim: >10 % PUE
// loss from winter to summer ambient, and the MS3 mitigation.
func BenchmarkClaimSeasonalPUE(b *testing.B) {
	var winter, summer, loss, ms3Gain float64
	for i := 0; i < b.N; i++ {
		cool := simhpc.DefaultCooling()
		winter = cool.PUE(15)
		summer = cool.PUE(35)
		loss = (summer - winter) / winter

		hot := simhpc.NewCluster(8, 35, func(int) *simhpc.Node {
			return simhpc.HomogeneousNode("n", 0, nil)
		})
		s := rtrm.NewMS3()
		plan := s.Decide(hot)
		naive := rtrm.Plan{AdmitFraction: 1, PUE: hot.Cooling.PUE(hot.AmbientC)}
		eMS3 := s.EnergyToSolution(hot, plan, 1e6)
		eNaive := s.EnergyToSolution(hot, naive, 1e6)
		ms3Gain = 1 - eMS3/eNaive
	}
	b.ReportMetric(winter, "PUE_winter")
	b.ReportMetric(summer, "PUE_summer")
	b.ReportMetric(loss*100, "seasonal_loss_%")
	b.ReportMetric(ms3Gain*100, "ms3_energy_gain_%")
	b.Logf("C4: PUE winter %.3f → summer %.3f = %.1f%% loss (paper: >10%%); MS3 recovers %.1f%% energy-to-solution", winter, summer, loss*100, ms3Gain*100)
}

// BenchmarkClaimPowerCap (C5) regenerates the §I Exascale envelope
// experiment: throughput under a 20 MW-scaled facility cap, greedy RTRM
// capping vs uniform derating vs uncapped.
func BenchmarkClaimPowerCap(b *testing.B) {
	var unTP, greedyTP, uniTP float64
	for i := 0; i < b.N; i++ {
		rng := simhpc.NewRNG(17)
		// Mixed fleet (half accelerated, half CPU-only, like a real
		// center mid-upgrade): greedy capping demotes the hungry nodes
		// first instead of derating everyone.
		c := simhpc.NewCluster(64, 20, func(i int) *simhpc.Node {
			if i%2 == 0 {
				return simhpc.HeterogeneousNode("h", 0.15, rng)
			}
			return simhpc.HomogeneousNode("c", 0.15, rng)
		})
		unTP = c.PeakGFLOPS()
		// Scale the paper's 20 MW / Exascale ratio to our cluster: cap at
		// 85 % of uncapped facility power.
		cap := rtrm.PowerCapper{CapW: c.FacilityPowerW(1) * 0.85}
		greedyTP = cap.Apply(c, 1).ThroughputGFLOPS
		uniTP = cap.UniformCap(c, 1).ThroughputGFLOPS
	}
	b.ReportMetric(unTP, "uncapped_GFLOPS")
	b.ReportMetric(greedyTP, "greedy_GFLOPS")
	b.ReportMetric(uniTP, "uniform_GFLOPS")
	b.Logf("C5: under an 85%% facility cap, greedy RTRM keeps %.0f/%.0f GFLOPS (%.1f%%), uniform derating %.0f (%.1f%%)",
		greedyTP, unTP, greedyTP/unTP*100, uniTP, uniTP/unTP*100)
}

// BenchmarkUseCaseDocking (U1) regenerates the §VII-a load-balancing
// comparison: static vs dynamic vs work-stealing on heavy-tailed ligand
// costs.
func BenchmarkUseCaseDocking(b *testing.B) {
	var rows []dock.Result
	for i := 0; i < b.N; i++ {
		rows = dock.Campaign(8, 400, 1.4, 42)
	}
	for _, r := range rows {
		b.Logf("U1: %s", r)
	}
	b.ReportMetric(rows[0].MakespanS/rows[1].MakespanS, "static_over_dynamic_makespan")
	b.ReportMetric(rows[0].Imbalance, "static_imbalance")
	b.ReportMetric(rows[1].Imbalance, "dynamic_imbalance")
}

// BenchmarkUseCaseNavigation (U2) regenerates the §VII-b adaptive
// navigation comparison: fixed vs self-adaptive fidelity under a storm.
func BenchmarkUseCaseNavigation(b *testing.B) {
	load := nav.StormProfile(2, 60, 600, 2400)
	var vFixed, vAdaptive int
	var qFixed, qAdaptive float64
	for i := 0; i < b.N; i++ {
		mk := func(adaptive bool) *nav.Server {
			g := nav.NewGraph(24, 24, 3, 7)
			s := nav.NewServer(g, 3000, 0.5, 99)
			s.Adaptive = adaptive
			return s
		}
		fixed := nav.Campaign(mk(false), 50, 60, load, 40)
		adaptive := nav.Campaign(mk(true), 50, 60, load, 40)
		vFixed, vAdaptive = nav.Violations(fixed), nav.Violations(adaptive)
		qFixed, qAdaptive = nav.MeanQuality(fixed), nav.MeanQuality(adaptive)
	}
	b.ReportMetric(float64(vFixed), "fixed_violations")
	b.ReportMetric(float64(vAdaptive), "adaptive_violations")
	b.ReportMetric(qFixed, "fixed_quality")
	b.ReportMetric(qAdaptive, "adaptive_quality")
	b.Logf("U2: SLA violations fixed=%d adaptive=%d; route quality fixed=%.3f adaptive=%.3f",
		vFixed, vAdaptive, qFixed, qAdaptive)
}

// BenchmarkAutotunerGreyBox (A1) regenerates the §IV grey-box claim:
// annotated spaces converge in far fewer evaluations than black-box.
func BenchmarkAutotunerGreyBox(b *testing.B) {
	obj := func(cfg autotune.Config) autotune.Measurement {
		bk := cfg["block"] - 8
		th := cfg["threads"] - 16
		v := 0.0
		if cfg["variant"] != 1 {
			v = 10
		}
		return autotune.Measurement{Cost: bk*bk + th*th/4 + v}
	}
	mk := func() *autotune.Space {
		return autotune.NewSpace(
			autotune.IntKnob("block", 1, 16, 1),
			autotune.IntKnob("threads", 1, 32, 1),
			autotune.VariantKnob("variant", "scalar", "vectorized", "unrolled", "tiled"),
		)
	}
	var black, grey float64
	for i := 0; i < b.N; i++ {
		var bSum, gSum int
		for seed := uint64(1); seed <= 5; seed++ {
			tu := autotune.NewTuner(mk(), &autotune.RandomSearch{Budget: 400, Rng: simhpc.NewRNG(seed)}, obj)
			if _, _, err := tu.Run(0); err != nil {
				b.Fatal(err)
			}
			bSum += tu.History.EvalsToWithin(0.05)

			gs := mk()
			gs.Constrain(func(p autotune.Point) bool {
				th := int(gs.Knobs[1].Level(p[1]))
				return th&(th-1) == 0
			}).Constrain(func(p autotune.Point) bool { return p[2] == 1 })
			tg := autotune.NewTuner(gs, &autotune.RandomSearch{Budget: 400, Rng: simhpc.NewRNG(seed)}, obj)
			if _, _, err := tg.Run(0); err != nil {
				b.Fatal(err)
			}
			gSum += tg.History.EvalsToWithin(0.05)
		}
		black, grey = float64(bSum)/5, float64(gSum)/5
	}
	b.ReportMetric(black, "blackbox_evals")
	b.ReportMetric(grey, "greybox_evals")
	b.Logf("A1: evaluations to within 5%% of optimum — black-box %.0f, grey-box %.0f (%.1fx faster)", black, grey, black/grey)
}

// BenchmarkPrecisionAutotuning (A2) regenerates the §IV precision
// autotuning trade-off on the three kernels.
func BenchmarkPrecisionAutotuning(b *testing.B) {
	rng := simhpc.NewRNG(9)
	n := 512
	x := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = rng.Uniform(-1, 1)
		y[i] = rng.Uniform(-1, 1)
	}
	init := make([]float64, 128)
	for i := range init {
		init[i] = rng.Uniform(0, 10)
	}
	kernels := []precision.Kernel{
		&precision.Dot{X: x, Y: y},
		&precision.Stencil{Init: init, Steps: 50},
		&precision.Saxpy{A: 1.5, X: x, Y: y},
	}
	for _, k := range kernels {
		b.Run(k.Name(), func(b *testing.B) {
			var res precision.TuneResult
			for i := 0; i < b.N; i++ {
				res = precision.Tune(k, 1e-2)
			}
			b.ReportMetric(res.EnergySaving*100, "energy_saving_%")
			b.ReportMetric(res.TimeSaving*100, "time_saving_%")
			b.Logf("A2 %s: chose %s at error budget 1e-2 → energy -%.0f%%, time -%.0f%% (rel err %.2g)",
				k.Name(), res.Chosen, res.EnergySaving*100, res.TimeSaving*100, res.Eval.RelError)
		})
	}
}

// BenchmarkSplitCompilation (A3) regenerates the §III-B split-compilation
// trade-off: offline-only vs split (runtime specialization) on repeated
// hot calls.
func BenchmarkSplitCompilation(b *testing.B) {
	buf := benchBuf(24)
	for _, mode := range []string{"offline-only", "split"} {
		b.Run(mode, func(b *testing.B) {
			sc, err := ir.NewSplitCompiler("k.c", benchKernelSrc)
			if err != nil {
				b.Fatal(err)
			}
			if mode == "split" {
				if _, err := sc.SpecializeNow("kernel", "size", 24); err != nil {
					b.Fatal(err)
				}
			}
			vm := ir.NewVM(sc.Mod)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := vm.Call("kernel", ir.PtrValue(buf), ir.NumValue(24)); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(vm.Cycles)/float64(b.N), "simcycles/call")
		})
	}
}

// benchKernel builds an adaptation kernel with nApps attached apps,
// each with its own telemetry inbox, a trivial policy/knob pair and a
// private workload generator (no cross-app locking in the workload
// path).
func benchKernel(nApps int) (*kernelrt.Kernel, []*kernelrt.Inbox) {
	rng := simhpc.NewRNG(61)
	cluster := simhpc.NewCluster(16, 24, func(i int) *simhpc.Node {
		return simhpc.HomogeneousNode(fmt.Sprintf("n%d", i), 0.15, rng)
	})
	k := kernelrt.NewKernel(rtrm.NewManager(cluster, cluster.FacilityPowerW(1)*0.9))
	inboxes := make([]*kernelrt.Inbox, nApps)
	for i := 0; i < nApps; i++ {
		gen := simhpc.NewWorkloadGen(uint64(100 + i))
		inbox := &kernelrt.Inbox{}
		inboxes[i] = inbox
		_, err := k.Attach(kernelrt.AppSpec{
			Name: fmt.Sprintf("app%d", i),
			SLA: monitor.SLA{Goals: []monitor.Goal{
				{Metric: monitor.MetricLatency, Relation: monitor.AtMost, Target: 1.0},
			}},
			Window:   16,
			Debounce: 2,
			Sensor:   inbox,
			Policy: kernelrt.PolicyFunc(func(monitor.Decision, map[string]monitor.Summary) (autotune.Config, bool) {
				return autotune.Config{"x": 1}, true
			}),
			Knob: kernelrt.KnobFunc(func(autotune.Config) {}),
			Workload: func() ([]*simhpc.Task, error) {
				return gen.Mix(2, 1, 1, 1, 8), nil
			},
		})
		if err != nil {
			panic(err)
		}
	}
	return k, inboxes
}

// BenchmarkKernelEpochSync (K1) measures the adaptation kernel's
// synchronous epoch rate as attached apps scale: each epoch ticks every
// app's control loop and multiplexes the merged workload into the
// shared manager.
func BenchmarkKernelEpochSync(b *testing.B) {
	for _, nApps := range []int{1, 8, 64, 256} {
		b.Run(fmt.Sprintf("apps=%d", nApps), func(b *testing.B) {
			k, inboxes := benchKernel(nApps)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, in := range inboxes {
					in.Push(monitor.MetricLatency, 0.2)
				}
				if _, err := k.RunEpoch(60); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(k.ManagerStats().WorkGFlop/float64(b.N), "GFLOP/epoch")
		})
	}
}

// BenchmarkKernelConcurrent (K2) measures end-to-end concurrent-mode
// throughput: sharded control-loop workers feeding the batched epoch
// scheduler and its pipelined executor, with telemetry producers
// running alongside. Reported in epochs completed per benchmark
// iteration wall time (epochs = b.N). Producers emit at PR-1's mean
// rate (one sample per 200µs per app up to 64 apps; the aggregate is
// held at that 64-app level beyond, so the 256-app point measures
// control-plane width, not producer-side load) but in batches of 10 —
// the pacing of a real telemetry agent, and the burst shape the
// lock-free inbox is built for. Per-sample sleeps would make the
// producers' timer churn, not the kernel, the measured quantity on
// small hosts.
func BenchmarkKernelConcurrent(b *testing.B) {
	const producerBatch = 10
	for _, nApps := range []int{1, 8, 64, 256} {
		b.Run(fmt.Sprintf("apps=%d", nApps), func(b *testing.B) {
			k, inboxes := benchKernel(nApps)
			interval := 200 * time.Microsecond
			if nApps > 64 {
				interval = time.Duration(nApps) * interval / 64
			}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			for _, in := range inboxes {
				go func(in *kernelrt.Inbox) {
					for ctx.Err() == nil {
						for i := 0; i < producerBatch; i++ {
							in.Push(monitor.MetricLatency, 0.2)
						}
						time.Sleep(producerBatch * interval)
					}
				}(in)
			}
			b.ResetTimer()
			if err := k.Start(ctx, kernelrt.Options{EpochDt: 60, Flush: 2 * time.Millisecond}); err != nil {
				b.Fatal(err)
			}
			target := int64(b.N)
			for k.Epochs() < target {
				time.Sleep(100 * time.Microsecond)
			}
			k.Stop()
			b.StopTimer()
			if err := k.Err(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkInboxIngest (K3) measures telemetry ingestion throughput:
// N producers push samples while a collector drains concurrently — the
// serving-side contention profile of the concurrent kernel. "ring" is
// the lock-free chunked Inbox; "locked" is the PR-1 mutex-guarded
// baseline it replaced (kept as LockedInbox).
func BenchmarkInboxIngest(b *testing.B) {
	type pushCollector interface {
		Push(metric string, v float64)
		Collect() []kernelrt.Sample
	}
	impls := []struct {
		name string
		mk   func() pushCollector
	}{
		{"ring", func() pushCollector { return &kernelrt.Inbox{} }},
		{"locked", func() pushCollector { return &kernelrt.LockedInbox{} }},
	}
	for _, impl := range impls {
		for _, producers := range []int{1, 8, 64} {
			b.Run(fmt.Sprintf("%s/producers=%d", impl.name, producers), func(b *testing.B) {
				in := impl.mk()
				stop := make(chan struct{})
				var collected atomic.Int64
				var collectorWG sync.WaitGroup
				collectorWG.Add(1)
				go func() {
					defer collectorWG.Done()
					for {
						collected.Add(int64(len(in.Collect())))
						select {
						case <-stop:
							return
						default:
						}
					}
				}()
				per := (b.N + producers - 1) / producers
				total := int64(per * producers)
				b.ResetTimer()
				var wg sync.WaitGroup
				for p := 0; p < producers; p++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for i := 0; i < per; i++ {
							in.Push(monitor.MetricLatency, float64(i))
						}
					}()
				}
				wg.Wait()
				b.StopTimer()
				close(stop)
				collectorWG.Wait()
				collected.Add(int64(len(in.Collect())))
				if collected.Load() != total {
					b.Fatalf("collected %d of %d samples", collected.Load(), total)
				}
				b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "samples/s")
			})
		}
	}
}

// BenchmarkKernelChurn (K4) measures membership churn under load: the
// concurrent kernel serves nApps working apps (telemetry producers and
// all, as in K2) while a churn goroutine live-attaches and detaches an
// extra app every few epochs — each change rolls the membership epoch
// and rebuilds the loop topology at an epoch boundary. ns/op is the
// per-epoch wall time including that churn tax; the K4 ≤ K2 bench-gate
// requirement bounds it.
func BenchmarkKernelChurn(b *testing.B) {
	const producerBatch = 10
	for _, nApps := range []int{8, 64} {
		b.Run(fmt.Sprintf("apps=%d", nApps), func(b *testing.B) {
			k, inboxes := benchKernel(nApps)
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			for _, in := range inboxes {
				go func(in *kernelrt.Inbox) {
					for ctx.Err() == nil {
						for i := 0; i < producerBatch; i++ {
							in.Push(monitor.MetricLatency, 0.2)
						}
						time.Sleep(producerBatch * 200 * time.Microsecond)
					}
				}(in)
			}
			var churns atomic.Int64
			churnDone := make(chan struct{})
			waitEpochs := func(n int64) {
				for target := k.Epochs() + n; k.Epochs() < target && ctx.Err() == nil; {
					time.Sleep(50 * time.Microsecond)
				}
			}
			b.ResetTimer()
			if err := k.Start(ctx, kernelrt.Options{EpochDt: 60, Flush: 2 * time.Millisecond}); err != nil {
				b.Fatal(err)
			}
			go func() {
				defer close(churnDone)
				gen := simhpc.NewWorkloadGen(999)
				for ctx.Err() == nil {
					if _, err := k.Attach(kernelrt.AppSpec{
						Name: "churn",
						Workload: func() ([]*simhpc.Task, error) {
							return gen.Mix(2, 1, 1, 1, 8), nil
						},
					}); err != nil {
						return
					}
					waitEpochs(4)
					if err := k.Detach("churn"); err != nil {
						return
					}
					churns.Add(1)
					waitEpochs(4)
				}
			}()
			for k.Epochs() < int64(b.N) {
				time.Sleep(100 * time.Microsecond)
			}
			k.Stop()
			b.StopTimer()
			cancel()
			<-churnDone
			if err := k.Err(); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(churns.Load())/b.Elapsed().Seconds(), "churn/s")
		})
	}
}

// benchKernelBackends is benchKernel over nBackends managers: the same
// 16 simulated nodes split into nBackends per-site clusters, apps
// hint-pinned round-robin so the static partition is exact and
// deterministic. nBackends=1 exercises the kernel's single-backend
// fast path through the same construction.
func benchKernelBackends(nApps, nBackends int) (*kernelrt.Kernel, []*kernelrt.Inbox) {
	return benchKernelBackendsPinned(nApps, nBackends, func(i int) int { return i % nBackends })
}

// benchKernelBackendsPinned is benchKernelBackends with an explicit
// app→backend pin function, so K8 can shape contention skew.
func benchKernelBackendsPinned(nApps, nBackends int, pin func(i int) int) (*kernelrt.Kernel, []*kernelrt.Inbox) {
	rng := simhpc.NewRNG(61)
	k := kernelrt.NewKernel()
	for bIdx := 0; bIdx < nBackends; bIdx++ {
		cluster := simhpc.NewCluster(16/nBackends, 24, func(i int) *simhpc.Node {
			return simhpc.HomogeneousNode(fmt.Sprintf("b%d-n%d", bIdx, i), 0.15, rng)
		})
		if err := k.AddBackend(fmt.Sprintf("b%d", bIdx), rtrm.NewManager(cluster, cluster.FacilityPowerW(1)*0.9)); err != nil {
			panic(err)
		}
	}
	inboxes := make([]*kernelrt.Inbox, nApps)
	for i := 0; i < nApps; i++ {
		gen := simhpc.NewWorkloadGen(uint64(100 + i))
		inbox := &kernelrt.Inbox{}
		inboxes[i] = inbox
		_, err := k.Attach(kernelrt.AppSpec{
			Name:    fmt.Sprintf("app%d", i),
			Backend: fmt.Sprintf("b%d", pin(i)),
			SLA: monitor.SLA{Goals: []monitor.Goal{
				{Metric: monitor.MetricLatency, Relation: monitor.AtMost, Target: 1.0},
			}},
			Window:   16,
			Debounce: 2,
			Sensor:   inbox,
			Policy: kernelrt.PolicyFunc(func(monitor.Decision, map[string]monitor.Summary) (autotune.Config, bool) {
				return autotune.Config{"x": 1}, true
			}),
			Knob: kernelrt.KnobFunc(func(autotune.Config) {}),
			Workload: func() ([]*simhpc.Task, error) {
				return gen.Mix(2, 1, 1, 1, 8), nil
			},
		})
		if err != nil {
			panic(err)
		}
	}
	return k, inboxes
}

// churnPlacement is K7's migration-churn driver: a static round-robin
// partition whose first app roams — every stride epochs the policy
// requests a placement refresh and moves app 0 to the next backend, so
// each period pays one full migration (generation roll, drain,
// topology rebuild).
type churnPlacement struct {
	stride     int64
	epochCount atomic.Int64
	moves      atomic.Int64
}

func (p *churnPlacement) ObserveEpoch([]kernelrt.BackendLoad) bool {
	return p.epochCount.Add(1)%p.stride == 0
}

func (p *churnPlacement) Place(apps []kernelrt.AppPlacement, view []kernelrt.BackendLoad) []int {
	move := p.moves.Add(1)
	out := make([]int, len(apps))
	for i := range apps {
		out[i] = i % len(view)
	}
	if len(apps) > 0 {
		out[0] = int(move) % len(view)
	}
	return out
}

// BenchmarkKernelPlacement (K7) measures the multi-backend kernel: the
// K2 shape (64 apps, concurrent mode, live telemetry producers) with
// the merged epoch batch placement-routed over N backends whose epochs
// run concurrently behind the one barrier. backends=1 is the
// single-backend fast path — the identical code path to K2 — gated
// same-run within 1.25x of K2/apps=64, where the slack above the
// measured ~1.04x is the 1-vCPU class's per-sample noise (see ci.yml);
// backends=2/4 record the partitioned scaling, env-dependent. The
// migrate case adds a forced migration every 8 epochs on 2 backends —
// each one a generation roll with drain — and its ns/op is the
// migration churn tax (gated same-run ≤1.5x of backends=2, the K4
// convention).
func BenchmarkKernelPlacement(b *testing.B) {
	const nApps = 64
	const producerBatch = 10
	run := func(b *testing.B, nBackends int, placement kernelrt.Placement) {
		k, inboxes := benchKernelBackends(nApps, nBackends)
		if placement != nil {
			k.SetPlacement(placement)
		}
		interval := 200 * time.Microsecond
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		for _, in := range inboxes {
			go func(in *kernelrt.Inbox) {
				for ctx.Err() == nil {
					for i := 0; i < producerBatch; i++ {
						in.Push(monitor.MetricLatency, 0.2)
					}
					time.Sleep(producerBatch * interval)
				}
			}(in)
		}
		b.ResetTimer()
		if err := k.Start(ctx, kernelrt.Options{EpochDt: 60, Flush: 2 * time.Millisecond}); err != nil {
			b.Fatal(err)
		}
		target := int64(b.N)
		for k.Epochs() < target {
			time.Sleep(100 * time.Microsecond)
		}
		k.Stop()
		b.StopTimer()
		if err := k.Err(); err != nil {
			b.Fatal(err)
		}
	}
	for _, nBackends := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("backends=%d", nBackends), func(b *testing.B) {
			run(b, nBackends, nil)
		})
	}
	b.Run("migrate", func(b *testing.B) {
		cp := &churnPlacement{stride: 8}
		run(b, 2, cp)
		b.ReportMetric(float64(cp.moves.Load())/b.Elapsed().Seconds(), "migrations/s")
	})
}

// BenchmarkEpochProtocols (K8) is the CCBench-style protocol matrix:
// the three epoch commit protocols (barrier, clock, optimistic) crossed
// with backend count {1, 2, 4} and contention skew. Each cell is the K7
// shape — 64 apps, concurrent mode, live telemetry producers — plus a
// status reader polling ManagerStats/BackendStats throughout, the
// control plane's /v1/epochs shape, so the reader-side cost of each
// commit discipline is in the measurement (optimistic's seqlock snapshot
// vs the commit-lock acquire of barrier/clock). skew=hot pins 3/4 of
// the apps to b0 on a 4-backend kernel: the cell where per-backend
// clocks pay off most, since b1-b3's epochs never wait behind b0's hot
// lane. ns/op comparisons across cells are same-run only and only at
// equal GOMAXPROCS — benchgate records gomaxprocs per entry and refuses
// -require-le across differing core counts.
func BenchmarkEpochProtocols(b *testing.B) {
	const nApps = 64
	const producerBatch = 10
	run := func(b *testing.B, proto kernelrt.EpochProtocol, nBackends int, pin func(i int) int) {
		k, inboxes := benchKernelBackendsPinned(nApps, nBackends, pin)
		k.SetProtocol(proto)
		interval := 200 * time.Microsecond
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		for _, in := range inboxes {
			go func(in *kernelrt.Inbox) {
				for ctx.Err() == nil {
					for i := 0; i < producerBatch; i++ {
						in.Push(monitor.MetricLatency, 0.2)
					}
					time.Sleep(producerBatch * interval)
				}
			}(in)
		}
		readerDone := make(chan struct{})
		go func() {
			defer close(readerDone)
			for ctx.Err() == nil {
				_ = k.ManagerStats()
				_ = k.BackendStats()
				time.Sleep(100 * time.Microsecond)
			}
		}()
		b.ResetTimer()
		if err := k.Start(ctx, kernelrt.Options{EpochDt: 60, Flush: 2 * time.Millisecond}); err != nil {
			b.Fatal(err)
		}
		target := int64(b.N)
		for k.Epochs() < target {
			time.Sleep(100 * time.Microsecond)
		}
		k.Stop()
		b.StopTimer()
		cancel()
		<-readerDone
		if err := k.Err(); err != nil {
			b.Fatal(err)
		}
	}
	for _, proto := range []kernelrt.EpochProtocol{kernelrt.Barrier, kernelrt.PerBackendClock, kernelrt.OptimisticMerge} {
		for _, nBackends := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("protocol=%s/backends=%d", proto, nBackends), func(b *testing.B) {
				run(b, proto, nBackends, func(i int) int { return i % nBackends })
			})
		}
		b.Run(fmt.Sprintf("protocol=%s/skew=hot", proto), func(b *testing.B) {
			// 48 of 64 apps on b0; the rest round-robin over b1-b3.
			run(b, proto, 4, func(i int) int {
				if i%4 != 0 {
					return 0
				}
				return 1 + (i/4)%3
			})
		})
	}
}

// BenchmarkManyCore (K12) is the scaling matrix the ROADMAP's
// "many-core profile" item asked for: epoch protocol {barrier, clock} ×
// GOMAXPROCS {1, 4, 8, 16} × app count {64, 256} on a 4-backend kernel,
// plus a wake-path comparison (channel handshake vs the notify path) at
// GOMAXPROCS {4, 8}. GOMAXPROCS is overridden inside each cell (and
// restored after), so the go-test name suffix — what benchgate records
// as the entry's gomaxprocs — is the same for every cell and same-run
// cross-cell gates (the 8-core ≥ 1.6× 1-core scaling ratio, notify ≤
// channel wakeups) stay legal under benchgate's equality rule. On a
// 1-vCPU host the override oversubscribes one core: the recorded
// num_cpu says so, and the scaling cells only mean something on ≥ 8
// hardware threads (the CI matrix leg). The wake cells report
// wakeups/epoch — a scheduler-pressure count that separates the two
// handshakes even without real parallelism: the channel handshake costs
// ~2 wake operations per shard per epoch, the notify path a doorbell
// ring plus tokens only for shards that actually parked.
func BenchmarkManyCore(b *testing.B) {
	const producerBatch = 10
	run := func(b *testing.B, procs int, proto kernelrt.EpochProtocol, wake kernelrt.WakeMode, nApps, nBackends int, countWakes bool) {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		k, inboxes := benchKernelBackendsPinned(nApps, nBackends, func(i int) int { return i % nBackends })
		k.SetProtocol(proto)
		interval := 200 * time.Microsecond
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		for _, in := range inboxes {
			go func(in *kernelrt.Inbox) {
				for ctx.Err() == nil {
					for i := 0; i < producerBatch; i++ {
						in.Push(monitor.MetricLatency, 0.2)
					}
					time.Sleep(producerBatch * interval)
				}
			}(in)
		}
		b.ResetTimer()
		if err := k.Start(ctx, kernelrt.Options{EpochDt: 60, Flush: 2 * time.Millisecond, Wake: wake}); err != nil {
			b.Fatal(err)
		}
		target := int64(b.N)
		for k.Epochs() < target {
			time.Sleep(100 * time.Microsecond)
		}
		if countWakes {
			// Read both counters while the kernel still runs, so the
			// ratio covers the same steady-state window; Stop's wind-down
			// wakes would smear the per-epoch rate on short runs.
			wakes, epochs := k.WakeOps(), k.Epochs()
			b.ReportMetric(float64(wakes)/float64(epochs), "wakeups/epoch")
		}
		k.Stop()
		b.StopTimer()
		cancel()
		if err := k.Err(); err != nil {
			b.Fatal(err)
		}
	}
	for _, proto := range []kernelrt.EpochProtocol{kernelrt.Barrier, kernelrt.PerBackendClock} {
		for _, procs := range []int{1, 4, 8, 16} {
			for _, nApps := range []int{64, 256} {
				b.Run(fmt.Sprintf("protocol=%s/gmp=%d/apps=%d", proto, procs, nApps), func(b *testing.B) {
					run(b, procs, proto, kernelrt.WakeNotify, nApps, 4, false)
				})
			}
		}
	}
	// Wake-path cells: one backend (no lanes, no routing) so the shard
	// handshake dominates what WakeOps counts, 256 apps so the shard
	// count saturates at 2·GOMAXPROCS and the channel baseline pays the
	// full O(shards) per epoch.
	for _, wake := range []kernelrt.WakeMode{kernelrt.WakeChannel, kernelrt.WakeNotify} {
		for _, procs := range []int{4, 8} {
			b.Run(fmt.Sprintf("wake=%s/gmp=%d/apps=256", wake, procs), func(b *testing.B) {
				run(b, procs, kernelrt.Barrier, wake, 256, 1, true)
			})
		}
	}
}

// BenchmarkBackendEvacuation (K9) prices the failure domain: the K7
// placement shape (64 apps, live producers) while a churner drains,
// removes and re-adds one backend in a continuous cycle and every
// commit runs under a backend deadline (the guarded commitBounded path
// — goroutine, timer and batch copy — instead of K7's synchronous
// fast path). Each drain migrates the victim's 64/nBackends pinned
// apps to the survivors at a generation boundary; each re-add brings
// them home. The CI gate holds steady-state epoch cost within 1.5× of
// BenchmarkKernelPlacement/backends=2 from the same run: lifecycle
// churn plus the deadline guard must stay a placement-grade tax, not a
// stop-the-world event. Reported evacuations/s counts completed
// remove+re-add cycles.
func BenchmarkBackendEvacuation(b *testing.B) {
	const nApps = 64
	mkBackend := func(nBackends, bIdx int) kernelrt.Backend {
		rng := simhpc.NewRNG(uint64(61 + bIdx))
		cluster := simhpc.NewCluster(16/nBackends, 24, func(i int) *simhpc.Node {
			return simhpc.HomogeneousNode(fmt.Sprintf("b%d-n%d", bIdx, i), 0.15, rng)
		})
		return rtrm.NewManager(cluster, cluster.FacilityPowerW(1)*0.9)
	}
	run := func(b *testing.B, proto kernelrt.EpochProtocol, nBackends int) {
		k, inboxes := benchKernelBackends(nApps, nBackends)
		k.SetProtocol(proto)
		k.SetBackendTimeout(2 * time.Second)
		interval := 200 * time.Microsecond
		const producerBatch = 10
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		for _, in := range inboxes {
			go func(in *kernelrt.Inbox) {
				for ctx.Err() == nil {
					for i := 0; i < producerBatch; i++ {
						in.Push(monitor.MetricLatency, 0.2)
					}
					time.Sleep(producerBatch * interval)
				}
			}(in)
		}
		var cycles atomic.Int64
		churnDone := make(chan struct{})
		go func() {
			defer close(churnDone)
			for victim := 1; ctx.Err() == nil; victim = 1 + victim%(nBackends-1) {
				name := fmt.Sprintf("b%d", victim)
				if err := k.RemoveBackend(name); err != nil {
					continue // racing shutdown
				}
				if err := k.AddBackend(name, mkBackend(nBackends, victim)); err != nil {
					return
				}
				cycles.Add(1)
				// ~50 lifecycle cycles/s: each remove+re-add is two full
				// generation rolls (topology rebuild, lane teardown under
				// clock/optimistic); unpaced, the churner alone saturates
				// the roll path and the measurement stops being
				// steady-state-epochs-under-churn.
				time.Sleep(20 * time.Millisecond)
			}
		}()
		b.ResetTimer()
		if err := k.Start(ctx, kernelrt.Options{EpochDt: 60, Flush: 2 * time.Millisecond}); err != nil {
			b.Fatal(err)
		}
		target := int64(b.N)
		for k.Epochs() < target {
			time.Sleep(100 * time.Microsecond)
		}
		k.Stop()
		b.StopTimer()
		cancel()
		<-churnDone
		if err := k.Err(); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(cycles.Load())/b.Elapsed().Seconds(), "evacuations/s")
	}
	for _, proto := range []kernelrt.EpochProtocol{kernelrt.Barrier, kernelrt.PerBackendClock, kernelrt.OptimisticMerge} {
		for _, nBackends := range []int{2, 4} {
			b.Run(fmt.Sprintf("protocol=%s/backends=%d", proto, nBackends), func(b *testing.B) {
				run(b, proto, nBackends)
			})
		}
	}
}

// mkIngestKernel builds the small kernel the ingest benchmarks (K5,
// K6) register their app against.
func mkIngestKernel() *kernelrt.Kernel {
	rng := simhpc.NewRNG(61)
	cluster := simhpc.NewCluster(4, 24, func(i int) *simhpc.Node {
		return simhpc.HomogeneousNode(fmt.Sprintf("n%d", i), 0.15, rng)
	})
	return kernelrt.NewKernel(rtrm.NewManager(cluster, cluster.FacilityPowerW(1)*0.9))
}

// collectIngest ticks the app's control loop so the inbox keeps
// draining while producers push — K3's concurrent-collector shape,
// shared by the K5/K6 ingest benchmarks. The 1 ms pacing matches a
// real control loop; if the binary stream briefly outruns a drain
// cycle on a small host, the server's stream flow control stalls the
// producers at the pending cap instead of failing them, so the
// benchmark degrades to the drain rate rather than erroring.
func collectIngest(ctl *kernelrt.Controller) (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
				ctl.Tick()
				time.Sleep(time.Millisecond)
			}
		}
	}()
	return func() { close(done); wg.Wait() }
}

// BenchmarkHTTPIngest (K5) measures telemetry ingestion through the
// HTTP control plane — P remote producers POSTing 64-sample batches at
// a registered app, JSON decode and all, with the app's control loop
// ticking concurrently as the collector — against the same shape fed
// straight into the in-process lock-free Inbox ("inproc"). The spread
// between the two is the serving tax of moving a producer out of
// process; K3 covers the inbox's own contention profile, and K6
// (BenchmarkStreamIngest) the binary streaming protocol built to close
// the spread.
func BenchmarkHTTPIngest(b *testing.B) {
	const batch = 64
	mkKernel := mkIngestKernel
	collect := collectIngest
	for _, producers := range []int{1, 8} {
		b.Run(fmt.Sprintf("http/producers=%d", producers), func(b *testing.B) {
			k := mkKernel()
			srv := httptest.NewServer(controlplane.NewServer(k))
			defer srv.Close()
			c := controlplane.NewClient(srv.URL, srv.Client())
			if _, err := c.Register(controlplane.AppSpec{Name: "ingest"}); err != nil {
				b.Fatal(err)
			}
			stop := collect(k.App("ingest"))
			defer stop()
			samples := make([]controlplane.Observation, batch)
			for i := range samples {
				samples[i] = controlplane.Observation{Metric: monitor.MetricLatency, Value: float64(i)}
			}
			per := (b.N + producers*batch - 1) / (producers * batch)
			total := per * producers * batch
			b.ResetTimer()
			var wg sync.WaitGroup
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < per; i++ {
						if _, err := c.Observe("ingest", samples); err != nil {
							b.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			b.StopTimer()
			b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "samples/s")
		})
		b.Run(fmt.Sprintf("inproc/producers=%d", producers), func(b *testing.B) {
			k := mkKernel()
			inbox := &kernelrt.Inbox{}
			if _, err := k.Attach(kernelrt.AppSpec{Name: "ingest", Sensor: inbox}); err != nil {
				b.Fatal(err)
			}
			stop := collect(k.App("ingest"))
			defer stop()
			per := (b.N + producers*batch - 1) / (producers * batch)
			total := per * producers * batch
			b.ResetTimer()
			var wg sync.WaitGroup
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < per; i++ {
						for s := 0; s < batch; s++ {
							inbox.Push(monitor.MetricLatency, float64(s))
						}
					}
				}()
			}
			wg.Wait()
			b.StopTimer()
			b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "samples/s")
		})
	}
}

// BenchmarkStreamIngest (K6) measures telemetry ingestion through the
// binary streaming protocol: P producers each hold one persistent
// POST /v1/stream connection open and write 64-sample frames
// (Observe × 64 + explicit Flush per batch) through the buffered
// ObservationWriter, with the app's control loop ticking concurrently
// as the collector — the same shape as K5's JSON path, with the
// per-request round trip and JSON decode replaced by length-prefixed
// frames, dictionary-interned metric names and one bulk inbox claim
// per batch. The K6/K5 samples/s ratio is the payoff of the wire
// protocol; the bench gate requires ≥ 5× in the same run.
func BenchmarkStreamIngest(b *testing.B) {
	const batch = 64
	for _, producers := range []int{1, 8} {
		b.Run(fmt.Sprintf("producers=%d", producers), func(b *testing.B) {
			k := mkIngestKernel()
			srv := httptest.NewServer(controlplane.NewServer(k))
			defer srv.Close()
			c := controlplane.NewClient(srv.URL, srv.Client())
			if _, err := c.Register(controlplane.AppSpec{Name: "ingest"}); err != nil {
				b.Fatal(err)
			}
			stop := collectIngest(k.App("ingest"))
			defer stop()
			writers := make([]*controlplane.ObservationWriter, producers)
			for p := range writers {
				w, err := c.Stream()
				if err != nil {
					b.Fatal(err)
				}
				writers[p] = w
			}
			per := (b.N + producers*batch - 1) / (producers * batch)
			total := per * producers * batch
			b.ResetTimer()
			var wg sync.WaitGroup
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(w *controlplane.ObservationWriter) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						for s := 0; s < batch; s++ {
							if err := w.Observe("ingest", monitor.MetricLatency, float64(s)); err != nil {
								b.Error(err)
								return
							}
						}
						if err := w.Flush(); err != nil {
							b.Error(err)
							return
						}
					}
				}(writers[p])
			}
			wg.Wait()
			b.StopTimer()
			var acked int64
			for _, w := range writers {
				ack, err := w.Close()
				if err != nil {
					b.Fatal(err)
				}
				acked += ack.Accepted
			}
			if acked != int64(total) {
				b.Fatalf("streams acked %d of %d samples", acked, total)
			}
			b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "samples/s")
		})
	}
}

// BenchmarkExascaleExtrapolation (C6) models the paper's roadmap claim:
// use-case metrics measured at small scale are extrapolated to Exascale
// node counts (§I: Exascale by 2023 within a 20-30 MW envelope; §VII:
// "performance metrics ... will be modelled to extrapolate these results
// towards Exascale systems").
func BenchmarkExascaleExtrapolation(b *testing.B) {
	// Measure the docking use case at small scale, then extrapolate.
	var base simhpc.Measured
	var sweep []simhpc.Projection
	var exaNodes int
	var exaProj simhpc.Projection
	for i := 0; i < b.N; i++ {
		rows := dock.Campaign(8, 400, 1.4, 42)
		dyn := rows[1] // dynamic scheduler
		base = simhpc.Measured{
			Nodes:         8,
			TaskS:         dyn.MakespanS / 400 * 8, // per-task time per worker
			TasksPerBatch: 400,
			NodePowerW:    900,
		}
		model := simhpc.DefaultScaling()
		sweep = model.Sweep(base, 1<<17)
		exaNodes, exaProj = model.NodesForExaflop(base, 6500)
	}
	for _, p := range sweep {
		if p.Nodes >= 1024 {
			b.Logf("C6: %s", p)
		}
	}
	b.Logf("C6: 1 EFLOPS needs %d heterogeneous nodes at eff %.1f%% drawing %.0f MW (envelope: 20-30 MW -> efficiency gap %.1fx)",
		exaNodes, exaProj.Efficiency*100, exaProj.PowerMW, exaProj.PowerMW/25)
	b.ReportMetric(float64(exaNodes), "nodes_for_exaflop")
	b.ReportMetric(exaProj.PowerMW, "power_MW")
	b.ReportMetric(exaProj.Efficiency*100, "parallel_eff_%")
}

// BenchmarkCompiledPolicy (K10) prices the programmable-policy tax:
// one controller tick (collect, analyse, decide, act) with the
// decision made by the hand-rolled ladder closure versus the DSL
// program compiled to the policy VM. The SLA is violated every tick
// and debounce is 1, so each iteration runs a full decide — the gated
// acceptance bound is VM-backed ≤ 2× the native closure (enforced by
// CI via benchgate -require-le on the same run).
func BenchmarkCompiledPolicy(b *testing.B) {
	mkSpec := func(inbox *kernelrt.Inbox, pol kernelrt.Policy, kb kernelrt.Knob) kernelrt.AppSpec {
		return kernelrt.AppSpec{
			Name: "k10",
			SLA: monitor.SLA{Goals: []monitor.Goal{
				{Metric: monitor.MetricLatency, Relation: monitor.AtMost, Target: 1.0},
			}},
			Window:   8,
			Debounce: 1,
			Sensor:   inbox,
			Policy:   pol,
			Knob:     kb,
		}
	}
	run := func(b *testing.B, ctl *kernelrt.Controller, inbox *kernelrt.Inbox) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			inbox.Push(monitor.MetricLatency, 5)
			ctl.Tick()
		}
		if ctl.Adaptations() == 0 {
			b.Fatal("policy never adapted")
		}
	}
	b.Run("policy=ladder", func(b *testing.B) {
		inbox := &kernelrt.Inbox{}
		levels := []float64{1, 0.5, 0.25}
		var idx atomic.Int64
		pol := kernelrt.PolicyFunc(func(monitor.Decision, map[string]monitor.Summary) (autotune.Config, bool) {
			// Cyclic rather than floor-stopping, so every iteration
			// prices a full decide+act instead of the bottomed-out nil.
			return autotune.Config{"level_idx": float64((idx.Load() + 1) % int64(len(levels)))}, true
		})
		kb := kernelrt.KnobFunc(func(cfg autotune.Config) {
			if v, ok := cfg["level_idx"]; ok && int64(v) < int64(len(levels)) {
				idx.Store(int64(v))
			}
		})
		run(b, kernelrt.NewController(mkSpec(inbox, pol, kb)), inbox)
	})
	b.Run("policy=dsl", func(b *testing.B) {
		inbox := &kernelrt.Inbox{}
		prog, err := policyc.Compile(`
aspectdef Steer
	input gain end
	apply
		do Set('level', 1 - violation + gain);
	end
	condition violation > 0 end
end
`)
		if err != nil {
			b.Fatal(err)
		}
		var levelBits atomic.Uint64
		levelBits.Store(math.Float64bits(1))
		kp, err := policyc.New(prog, policyc.Options{
			Params:    map[string]float64{"gain": 0.1},
			KnobValue: func(string) float64 { return math.Float64frombits(levelBits.Load()) },
		})
		if err != nil {
			b.Fatal(err)
		}
		defer kp.Close()
		kb := kernelrt.KnobFunc(func(cfg autotune.Config) {
			if v, ok := cfg["level"]; ok {
				levelBits.Store(math.Float64bits(v))
			}
		})
		run(b, kernelrt.NewController(mkSpec(inbox, kp, kb)), inbox)
	})
}

// mkDurablePlane builds the K11 serving stack: the ingest kernel under
// an httptest control plane, either memory-only or journaled into a
// fresh temp dir (WAL + snapshots, group commit at the default
// window).
func mkDurablePlane(b *testing.B, journaled bool) (*controlplane.Client, *kernelrt.Kernel) {
	b.Helper()
	k := mkIngestKernel()
	var opts []controlplane.ServerOption
	if journaled {
		log, err := durable.Open(b.TempDir(), durable.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { log.Close() })
		opts = append(opts, controlplane.WithJournal(log, 256))
	}
	srv := httptest.NewServer(controlplane.NewServer(k, opts...))
	b.Cleanup(srv.Close)
	return controlplane.NewClient(srv.URL, srv.Client()), k
}

// BenchmarkJournaledAdmission (K11) prices durability where it is
// actually paid: the admission path. One op is a register+detach pair
// over HTTP from P concurrent tenants — memory-only acks from RAM;
// journaled fsyncs two records per op before acking. The group-commit
// design keeps the spread bounded even though every ack now waits on
// the disk: appends run outside the membership lock, so concurrent
// tenants' records share one fsync. The bench gate requires journaled
// ≤ 5× memory-only in the same run.
func BenchmarkJournaledAdmission(b *testing.B) {
	const producers = 8
	for _, mode := range []string{"memory", "wal"} {
		b.Run("mode="+mode, func(b *testing.B) {
			c, _ := mkDurablePlane(b, mode == "wal")
			var seq atomic.Int64
			b.ResetTimer()
			b.SetParallelism((producers + runtime.GOMAXPROCS(0) - 1) / runtime.GOMAXPROCS(0))
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					name := fmt.Sprintf("t%d", seq.Add(1))
					if _, err := c.Register(controlplane.AppSpec{
						Name:  name,
						Quota: &controlplane.QuotaSpec{Rate: 1000, Burst: 1000},
					}); err != nil {
						b.Error(err)
						return
					}
					if err := c.Detach(name); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "admissions/s")
		})
	}
}

// BenchmarkQuotedIngest (K11) prices durability where it must NOT be
// paid: the telemetry hot path. The journaled mode registers a metered
// tenant (a per-request token-bucket check) on a journaled plane; the
// memory mode is the unmetered K6 shape. Observations are never
// journaled — durability covers membership, not samples — so the only
// admissible overhead is the bucket arithmetic; the bench gate
// requires journaled+quota ≤ 1.15× memory-only in the same run.
func BenchmarkQuotedIngest(b *testing.B) {
	const batch = 64
	for _, mode := range []string{"memory", "wal"} {
		b.Run("mode="+mode, func(b *testing.B) {
			c, k := mkDurablePlane(b, mode == "wal")
			spec := controlplane.AppSpec{Name: "ingest"}
			if mode == "wal" {
				// A quota the bench never trips: rate beyond the drain,
				// burst covering any in-flight spike, so the measured cost
				// is the check itself, not throttling.
				spec.Quota = &controlplane.QuotaSpec{Rate: 1e9, Burst: 1e9}
			}
			if _, err := c.Register(spec); err != nil {
				b.Fatal(err)
			}
			stop := collectIngest(k.App("ingest"))
			defer stop()
			w, err := c.Stream()
			if err != nil {
				b.Fatal(err)
			}
			per := (b.N + batch - 1) / batch
			total := per * batch
			b.ResetTimer()
			for i := 0; i < per; i++ {
				for s := 0; s < batch; s++ {
					if err := w.Observe("ingest", monitor.MetricLatency, float64(s)); err != nil {
						b.Fatal(err)
					}
				}
				if err := w.Flush(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			ack, err := w.Close()
			if err != nil {
				b.Fatal(err)
			}
			if ack.Accepted != int64(total) {
				b.Fatalf("stream acked %d of %d samples", ack.Accepted, total)
			}
			b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "samples/s")
		})
	}
}
