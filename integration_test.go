package repro

import (
	"strings"
	"testing"

	"repro/internal/apps/nav"
	"repro/internal/autotune"
	"repro/internal/core"
	"repro/internal/dsl/interp"
	"repro/internal/ir"
	"repro/internal/precision"
	"repro/internal/rtrm"
	"repro/internal/simhpc"
)

// TestIntegrationWeaveToRTRM crosses the full stack: a woven, dynamically
// specialized application runs on the IR VM; its cycle cost is mapped to
// a simulator task; the RTRM's governors then pick the operating point —
// connecting the application autotuning loop to the system control loop
// exactly as Fig. 1 draws them.
func TestIntegrationWeaveToRTRM(t *testing.T) {
	tf, err := core.NewToolFlow("app.c", benchKernelSrc, benchAspects)
	if err != nil {
		t.Fatal(err)
	}
	if err := tf.WeaveAspect("SpecializeKernel", interp.Num(4), interp.Num(64)); err != nil {
		t.Fatal(err)
	}
	if err := tf.Compile(); err != nil {
		t.Fatal(err)
	}
	buf := benchBuf(32)
	measure := func() float64 {
		before := tf.VM.Cycles
		if _, err := tf.Invoke("run", ir.PtrValue(buf), ir.NumValue(32), ir.NumValue(20)); err != nil {
			t.Fatal(err)
		}
		return float64(tf.VM.Cycles - before)
	}
	warm := measure() // triggers specialization
	steady := measure()
	if steady > warm {
		t.Errorf("steady-state cycles %v should not exceed warm-up %v", steady, warm)
	}

	// Map simulated cycles to a cluster task: this kernel is a streaming
	// reduction, so treat its work as balanced roofline traffic.
	task := &simhpc.Task{GFlop: steady / 1e4, MemGB: steady / 3e5}
	dev := simhpc.NewDevice(simhpc.XeonCPUSpec(), "node0-cpu", 0, nil)
	baseline, optimal, saving := rtrm.GovernorSavings(dev, []*simhpc.Task{task}, 0)
	if saving <= 0 {
		t.Errorf("optimal governor should save energy: baseline %v optimal %v",
			baseline.EnergyJ, optimal.EnergyJ)
	}
}

// TestIntegrationNavigationAutotunedFidelity uses the real autotuner
// (UCB bandit) to pick the navigation fidelity offline for a given load,
// cross-checking the use case against the autotune package.
func TestIntegrationNavigationAutotunedFidelity(t *testing.T) {
	g := nav.NewGraph(24, 24, 3, 7)
	srv := nav.NewServer(g, 3000, 0.5, 5)
	space := autotune.NewSpace(autotune.VariantKnob("fidelity",
		"exact", "astar", "coarse2", "coarse4"))
	// Cost under storm load: latency penalty (SLA-weighted) + quality loss.
	lambda := 40.0
	obj := func(cfg autotune.Config) autotune.Measurement {
		srv.Fid = nav.Fidelity(int(cfg["fidelity"]))
		st := srv.RunEpoch(0, lambda, 20)
		cost := st.P95Latency / 0.5 // normalized against the SLA
		if cost < 1 {
			cost = 1 // met: only quality matters below the SLA
		}
		cost += (1 - st.Quality) * 0.5
		return autotune.Measurement{Cost: cost}
	}
	tuner := autotune.NewTuner(space, &autotune.UCB{Budget: 40, C: 0.3}, obj)
	best, _, err := tuner.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	chosen := nav.Fidelity(int(space.At(best)["fidelity"]))
	// Under a 40 req/s storm with 3000 expansions/s, only the coarse
	// fidelities hold the SLA.
	if chosen == nav.Exact || chosen == nav.AStar {
		t.Errorf("autotuner picked %s under storm load; expected a coarse fidelity", chosen)
	}
}

// TestIntegrationPrecisionAsKnob exposes the precision format as an
// autotune knob and lets exhaustive search find the energy-optimal
// format under an error budget, uniting §IV's two autotuning paths.
func TestIntegrationPrecisionAsKnob(t *testing.T) {
	rng := simhpc.NewRNG(31)
	n := 256
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.Uniform(-1, 1)
		y[i] = rng.Uniform(-1, 1)
	}
	k := &precision.Dot{X: x, Y: y}
	evals := precision.Evaluate(k)
	space := autotune.NewSpace(autotune.VariantKnob("format",
		"float64", "float32", "bfloat16", "fixed16"))
	const errBudget = 1e-2
	obj := func(cfg autotune.Config) autotune.Measurement {
		e := evals[int(cfg["format"])]
		cost := e.EnergyAU
		if e.RelError > errBudget {
			cost += 1e12 // constraint violation
		}
		return autotune.Measurement{Cost: cost}
	}
	tuner := autotune.NewTuner(space, &autotune.Exhaustive{}, obj)
	best, m, err := tuner.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Cost >= 1e12 {
		t.Fatal("tuner picked a budget-violating format")
	}
	want := precision.Tune(k, errBudget).Chosen
	got := precision.Formats()[int(space.At(best)["format"])]
	if got != want {
		t.Errorf("autotuner chose %s, precision.Tune chooses %s", got, want)
	}
}

// TestIntegrationDeterminism re-runs a cross-stack scenario twice and
// demands bit-identical results — the reproducibility contract of
// DESIGN.md.
func TestIntegrationDeterminism(t *testing.T) {
	run := func() (float64, int64, float64) {
		// Cluster epoch under manager.
		rng := simhpc.NewRNG(77)
		cluster := simhpc.NewCluster(6, 28, func(int) *simhpc.Node {
			return simhpc.HeterogeneousNode("n", 0.15, rng)
		})
		m := rtrm.NewManager(cluster, cluster.FacilityPowerW(1)*0.8)
		gen := simhpc.NewWorkloadGen(78)
		for i := 0; i < 10; i++ {
			m.RunEpoch(60, gen.Mix(24, 1, 1, 1, 12))
		}
		// Woven VM execution.
		tf, err := core.NewToolFlow("app.c", benchKernelSrc, benchAspects)
		if err != nil {
			t.Fatal(err)
		}
		if err := tf.WeaveAspect("SpecializeKernel", interp.Num(4), interp.Num(64)); err != nil {
			t.Fatal(err)
		}
		if err := tf.Compile(); err != nil {
			t.Fatal(err)
		}
		buf := benchBuf(16)
		if _, err := tf.Invoke("run", ir.PtrValue(buf), ir.NumValue(16), ir.NumValue(5)); err != nil {
			t.Fatal(err)
		}
		return m.EnergyJ, tf.VM.Cycles, m.WorkGFlop
	}
	e1, c1, w1 := run()
	e2, c2, w2 := run()
	if e1 != e2 || c1 != c2 || w1 != w2 {
		t.Errorf("not deterministic: (%v,%v,%v) vs (%v,%v,%v)", e1, c1, w1, e2, c2, w2)
	}
}

// TestIntegrationWovenSourceIsValidMiniC re-parses woven output: the
// weaver must always produce syntactically valid source (a property the
// printer round-trip guarantees per-construct; this checks it end to
// end after aspect application).
func TestIntegrationWovenSourceIsValidMiniC(t *testing.T) {
	tf, err := core.NewToolFlow("app.c", benchKernelSrc, benchAspects)
	if err != nil {
		t.Fatal(err)
	}
	if err := tf.WeaveAspect("ProfileArguments", interp.Str("kernel")); err != nil {
		t.Fatal(err)
	}
	src := tf.Source()
	if !strings.Contains(src, "profile_args") {
		t.Fatal("weaving had no effect")
	}
	tf2, err := core.NewToolFlow("rewoven.c", src, benchAspects)
	if err != nil {
		t.Fatalf("woven source does not re-parse: %v", err)
	}
	if err := tf2.Compile(); err != nil {
		t.Fatalf("woven source does not recompile: %v", err)
	}
	if err := tf.Compile(); err != nil {
		t.Fatal(err)
	}
	buf := benchBuf(8)
	v1, err := tf.Invoke("kernel", ir.PtrValue(buf), ir.NumValue(8))
	if err != nil {
		t.Fatal(err)
	}
	v2, err := tf2.Invoke("kernel", ir.PtrValue(buf), ir.NumValue(8))
	if err != nil {
		t.Fatal(err)
	}
	if v1.Num != v2.Num {
		t.Errorf("rewoven result %v != original %v", v2.Num, v1.Num)
	}
}

// TestIntegrationProfileDrivenPrecision wires the Fig. 2 profiling
// aspect to the precision package's dynamic-range profiler: the woven
// probes observe every runtime argument of kernel, and the profiler
// recommends the narrowest safe format — the paper's "fully automatic
// dynamic optimizations based on ... dynamic range of function
// parameters".
func TestIntegrationProfileDrivenPrecision(t *testing.T) {
	tf, err := core.NewToolFlow("app.c", benchKernelSrc, benchAspects)
	if err != nil {
		t.Fatal(err)
	}
	if err := tf.WeaveAspect("ProfileArguments", interp.Str("kernel")); err != nil {
		t.Fatal(err)
	}
	if err := tf.Compile(); err != nil {
		t.Fatal(err)
	}
	prof := precision.NewRangeProfiler()
	// Rebind the woven probe to feed the range profiler. The callee's
	// scalar parameters map to the trailing probe arguments.
	tf.VM.RegisterExtern("profile_args", func(_ *ir.VM, args []ir.Value) (ir.Value, error) {
		if len(args) >= 4 && args[3].Kind == ir.KindNum {
			prof.Observe(args[0].Str, "size", args[3].Num)
		}
		return ir.NumValue(0), nil
	})
	buf := benchBuf(48)
	for _, size := range []float64{16, 32, 48} {
		if _, err := tf.Invoke("run", ir.PtrValue(buf), ir.NumValue(size), ir.NumValue(3)); err != nil {
			t.Fatal(err)
		}
	}
	r := prof.Range("kernel", "size")
	if r == nil || r.N != 9 || r.Min != 16 || r.Max != 48 {
		t.Fatalf("profiled range: %+v", r)
	}
	// Small integral values at a loose budget: fixed point suffices.
	if got := prof.Recommend("kernel", "size", 1e-2); got != precision.Fixed16 {
		t.Errorf("recommended %s, want fixed16.16", got)
	}
}
