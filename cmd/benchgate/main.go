// Command benchgate is the paper-metric regression gate (ROADMAP item):
// it parses `go test -bench` output, records every reported metric in a
// JSON baseline, and fails CI when a metric drifts beyond tolerance —
// so the reproduction's claim numbers (C1–C6) and kernel throughput
// (K1–K6, including membership churn, HTTP ingest and the binary
// streaming ingest that must stay ≥5× the JSON path) cannot silently
// rot.
//
// Usage:
//
//	go test -run '^$' -bench '...' -benchmem . | benchgate -update -baseline BENCH_kernel.json
//	go test -run '^$' -bench '...' -benchmem . | benchgate -baseline BENCH_kernel.json
//
// Deterministic simulation metrics (ratios, percentages, GFLOP/epoch)
// are gated symmetrically at -tol (default 0.25 per the
// regression-gate spec). Environment-dependent metrics — ns/op, B/op,
// allocs/op, samples/s — are gated one-sidedly at the looser
// -time-tol: only regressions fail, since CI machine classes vary and
// an improvement is never a defect. Relative invariants between
// benchmarks measured in the same
// run — e.g. the acceptance criterion that the concurrent kernel beats
// the synchronous driver — are expressed with -require-le, which is
// noise-robust because both sides share the run's machine conditions.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	goruntime "runtime"
	"strconv"
	"strings"
)

// Baseline is the committed benchmark record: benchmark name → metric
// unit → value.
type Baseline struct {
	Note       string                        `json:"note,omitempty"`
	Benchmarks map[string]map[string]float64 `json:"benchmarks"`
}

// procSuffix captures the -GOMAXPROCS suffix go test appends to
// benchmark names on multi-proc runs (absent when GOMAXPROCS=1).
var procSuffix = regexp.MustCompile(`-(\d+)$`)

// Informational per-entry metrics benchgate records with every
// benchmark: the GOMAXPROCS the benchmark ran under (from the name
// suffix) and the core count of the gating host (benchgate consumes
// the bench pipe on the machine that ran it). They exist so a number
// measured on the 1-vCPU CI class is never again confused with a
// many-core one — relative -require-le comparisons refuse to run
// across differing gomaxprocs, and the drift gate skips them.
const (
	metricGomaxprocs = "gomaxprocs"
	metricNumCPU     = "num_cpu"
)

// parseBench extracts benchmark metrics from `go test -bench` output.
// A result line looks like:
//
//	BenchmarkKernelEpochSync/apps=64-8   10000   105655 ns/op   896.3 GFLOP/epoch   68749 B/op   496 allocs/op
//
// The -8 proc suffix is stripped from the name and recorded as the
// entry's gomaxprocs metric (1 when absent); num_cpu records this
// host's core count.
func parseBench(r io.Reader) (map[string]map[string]float64, error) {
	out := make(map[string]map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		procs := 1.0
		if m := procSuffix.FindStringSubmatch(fields[0]); m != nil {
			procs, _ = strconv.ParseFloat(m[1], 64)
		}
		name := procSuffix.ReplaceAllString(fields[0], "")
		// fields[1] is the iteration count; then (value, unit) pairs.
		metrics := out[name]
		if metrics == nil {
			metrics = make(map[string]float64)
			out[name] = metrics
		}
		metrics[metricGomaxprocs] = procs
		metrics[metricNumCPU] = float64(goruntime.NumCPU())
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchgate: %s: bad value %q", name, fields[i])
			}
			metrics[fields[i+1]] = v
		}
	}
	return out, sc.Err()
}

// metricClass distinguishes deterministic simulation outputs (gated
// symmetrically: drifting in either direction means the reproduction's
// numbers rotted) from environment-dependent metrics, which vary with
// machine class and load and are gated one-sidedly at the loose
// tolerance — only a regression fails; a faster machine or a genuine
// improvement never does.
type metricClass int

const (
	deterministic     metricClass = iota
	envLowerIsBetter              // ns/op, B/op, allocs/op, wakeups/epoch
	envHigherIsBetter             // rates: samples/s, churn/s, ...
	informational                 // gomaxprocs, num_cpu: recorded, never gated
)

func classify(unit string) metricClass {
	switch {
	case unit == metricGomaxprocs || unit == metricNumCPU:
		return informational
	case unit == "ns/op" || unit == "B/op" || unit == "allocs/op":
		return envLowerIsBetter
	case unit == "wakeups/epoch":
		// Scheduler-pressure count from the K12 wake-path cells: how
		// often shards actually park depends on host timing, so it is
		// env-dependent (one-sided), not a deterministic simulation
		// output — unlike GFLOP/epoch, which matches no case and stays
		// in the deterministic class below.
		return envLowerIsBetter
	case strings.HasSuffix(unit, "/s"):
		// Wall-clock rates (samples/s, churn/s) scale with the machine
		// class like ns/op does; higher is better.
		return envHigherIsBetter
	}
	return deterministic
}

// regressed reports whether got regressed from want beyond the
// tolerance for the unit's class, and returns the tolerance applied.
func regressed(unit string, want, got, tol, timeTol float64) (bool, float64) {
	switch classify(unit) {
	case informational:
		return false, 0 // recorded context, not a gated number
	case envLowerIsBetter:
		return got > want*(1+timeTol), timeTol
	case envHigherIsBetter:
		// Asymmetric division keeps the check meaningful for any
		// tolerance: tol 4.0 means "no worse than 5x slower".
		return got < want/(1+timeTol), timeTol
	default:
		return drift(want, got) > tol, tol
	}
}

// drift returns |cur-base| / |base| (0 when both are 0).
func drift(base, cur float64) float64 {
	if base == 0 {
		if cur == 0 {
			return 0
		}
		return 1
	}
	d := (cur - base) / base
	if d < 0 {
		d = -d
	}
	return d
}

// requirement is one -require-le clause: lhs must not exceed rhs*slack,
// both read from the current run.
type requirement struct {
	lhsBench, lhsMetric string
	rhsBench, rhsMetric string
	slack               float64
}

// parseRequirement parses "BenchA:metric<=BenchB:metric[xSLACK]".
func parseRequirement(s string) (requirement, error) {
	req := requirement{slack: 1.0}
	if i := strings.LastIndex(s, "x"); i > strings.Index(s, "<=") {
		sl, err := strconv.ParseFloat(s[i+1:], 64)
		if err == nil && sl > 0 {
			req.slack = sl
			s = s[:i]
		}
	}
	parts := strings.SplitN(s, "<=", 2)
	if len(parts) != 2 {
		return req, fmt.Errorf("benchgate: requirement %q: want LHS<=RHS", s)
	}
	var ok1, ok2 bool
	req.lhsBench, req.lhsMetric, ok1 = strings.Cut(strings.TrimSpace(parts[0]), ":")
	req.rhsBench, req.rhsMetric, ok2 = strings.Cut(strings.TrimSpace(parts[1]), ":")
	if !ok1 || !ok2 {
		return req, fmt.Errorf("benchgate: requirement %q: sides must be Benchmark:metric", s)
	}
	return req, nil
}

// checkRequirement evaluates one -require-le clause against the run.
// ok=false carries the failure message. A relative invariant is only
// meaningful when both sides ran with the same parallelism, so the
// check refuses to compare a 1-proc number with a 4-proc one (as a
// `go test -cpu 1,4` mixed run would produce). Only the two run
// entries' gomaxprocs must agree — the committed baseline's value is
// never consulted, so a GOMAXPROCS=8 CI leg can gate same-run ratios
// without touching baselines recorded on the 1-vCPU class.
func checkRequirement(cur map[string]map[string]float64, req requirement) (string, bool) {
	lhs, err1 := lookup(cur, req.lhsBench, req.lhsMetric)
	if err1 != nil {
		return err1.Error(), false
	}
	rhs, err2 := lookup(cur, req.rhsBench, req.rhsMetric)
	if err2 != nil {
		return err2.Error(), false
	}
	lp, rp := cur[req.lhsBench][metricGomaxprocs], cur[req.rhsBench][metricGomaxprocs]
	if lp != rp {
		return fmt.Sprintf(
			"require-le refused: %s ran at gomaxprocs=%g but %s at gomaxprocs=%g — cross-core comparisons are not meaningful",
			req.lhsBench, lp, req.rhsBench, rp), false
	}
	if lhs > rhs*req.slack {
		return fmt.Sprintf("require-le violated: %s:%s (%g) > %s:%s (%g) x %.2f",
			req.lhsBench, req.lhsMetric, lhs, req.rhsBench, req.rhsMetric, rhs, req.slack), false
	}
	return "", true
}

func lookup(cur map[string]map[string]float64, bench, metric string) (float64, error) {
	m, ok := cur[bench]
	if !ok {
		return 0, fmt.Errorf("benchmark %s missing from the run", bench)
	}
	v, ok := m[metric]
	if !ok {
		return 0, fmt.Errorf("benchmark %s reported no %q", bench, metric)
	}
	return v, nil
}

func run() error {
	var (
		baselinePath = flag.String("baseline", "BENCH_kernel.json", "baseline JSON path")
		update       = flag.Bool("update", false, "rewrite the baseline from stdin instead of checking")
		note         = flag.String("note", "", "note stored in the baseline on -update")
		tol          = flag.Float64("tol", 0.25, "allowed relative drift for deterministic metrics")
		timeTol      = flag.Float64("time-tol", 1.0, "allowed one-sided regression for environment-dependent metrics (ns/op, B/op, allocs/op, samples/s)")
		only         = flag.String("only", "", "regex restricting which baseline benchmarks are drift-checked (empty: all); -require-le clauses always run")
		requires     []requirement
	)
	flag.Func("require-le", "relative requirement LHS<=RHS (Benchmark:metric<=Benchmark:metric[xSLACK]); repeatable", func(s string) error {
		req, err := parseRequirement(s)
		if err != nil {
			return err
		}
		requires = append(requires, req)
		return nil
	})
	flag.Parse()

	cur, err := parseBench(os.Stdin)
	if err != nil {
		return err
	}
	if len(cur) == 0 {
		return fmt.Errorf("benchgate: no benchmark results on stdin")
	}

	if *update {
		b := Baseline{Note: *note, Benchmarks: cur}
		data, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*baselinePath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("benchgate: wrote %d benchmarks to %s\n", len(cur), *baselinePath)
		return nil
	}

	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		return err
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("benchgate: %s: %w", *baselinePath, err)
	}

	var onlyRe *regexp.Regexp
	if *only != "" {
		onlyRe, err = regexp.Compile(*only)
		if err != nil {
			return fmt.Errorf("benchgate: -only: %w", err)
		}
	}

	var failures []string
	checked := 0
	for bench, metrics := range base.Benchmarks {
		if onlyRe != nil && !onlyRe.MatchString(bench) {
			continue // partial run: only the selected subset is gated
		}
		curMetrics, ok := cur[bench]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: present in baseline but missing from the run", bench))
			continue
		}
		for unit, want := range metrics {
			got, ok := curMetrics[unit]
			if !ok {
				failures = append(failures, fmt.Sprintf("%s: metric %q missing from the run", bench, unit))
				continue
			}
			checked++
			bad, limit := regressed(unit, want, got, *tol, *timeTol)
			if bad {
				failures = append(failures, fmt.Sprintf("%s: %s regressed beyond %.0f%% (baseline %g, run %g)",
					bench, unit, limit*100, want, got))
			}
		}
	}
	for _, req := range requires {
		if msg, ok := checkRequirement(cur, req); !ok {
			failures = append(failures, msg)
			continue
		}
		checked++
	}

	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "benchgate: FAIL:", f)
		}
		return fmt.Errorf("benchgate: %d of %d checks failed", len(failures), checked)
	}
	fmt.Printf("benchgate: %d checks passed against %s\n", checked, *baselinePath)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
