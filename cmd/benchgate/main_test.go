package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkKernelEpochSync/apps=64-8         	   20614	     59135 ns/op	       896.3 GFLOP/epoch	   14969 B/op	     198 allocs/op
BenchmarkKernelConcurrent/apps=64         	   19266	     55971 ns/op	   13439 B/op	     197 allocs/op
BenchmarkClaimHeteroEfficiency	     100	  11881 ns/op	      7032 hetero_MFLOPS/W	      2304 homog_MFLOPS/W	         3.052 ratio
PASS
ok  	repro	44.224s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(got), got)
	}
	// The -8 proc suffix must be stripped; the suffix-less form kept.
	sync := got["BenchmarkKernelEpochSync/apps=64"]
	if sync == nil {
		t.Fatal("sync benchmark missing (proc suffix not stripped?)")
	}
	if sync["ns/op"] != 59135 || sync["allocs/op"] != 198 || sync["GFLOP/epoch"] != 896.3 {
		t.Errorf("sync metrics: %v", sync)
	}
	conc := got["BenchmarkKernelConcurrent/apps=64"]
	if conc == nil || conc["ns/op"] != 55971 {
		t.Errorf("concurrent metrics: %v", conc)
	}
	claim := got["BenchmarkClaimHeteroEfficiency"]
	if claim == nil || claim["ratio"] != 3.052 || claim["hetero_MFLOPS/W"] != 7032 {
		t.Errorf("claim metrics: %v", claim)
	}
}

func TestParseBenchRecordsHostContext(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	// The -8 suffix becomes the entry's gomaxprocs; a suffix-less line
	// (GOMAXPROCS=1 run) records 1.
	if v := got["BenchmarkKernelEpochSync/apps=64"][metricGomaxprocs]; v != 8 {
		t.Errorf("suffixed gomaxprocs = %v, want 8", v)
	}
	if v := got["BenchmarkKernelConcurrent/apps=64"][metricGomaxprocs]; v != 1 {
		t.Errorf("suffix-less gomaxprocs = %v, want 1", v)
	}
	for name, metrics := range got {
		if metrics[metricNumCPU] < 1 {
			t.Errorf("%s: num_cpu = %v, want >= 1", name, metrics[metricNumCPU])
		}
	}
}

func TestRequireRefusesCrossCoreComparison(t *testing.T) {
	cur := map[string]map[string]float64{
		"BenchA": {"ns/op": 100, metricGomaxprocs: 1},
		"BenchB": {"ns/op": 200, metricGomaxprocs: 4},
		"BenchC": {"ns/op": 200, metricGomaxprocs: 1},
	}
	req := requirement{lhsBench: "BenchA", lhsMetric: "ns/op", rhsBench: "BenchB", rhsMetric: "ns/op", slack: 1.0}
	msg, ok := checkRequirement(cur, req)
	if ok || !strings.Contains(msg, "refused") {
		t.Errorf("cross-core comparison not refused: ok=%v msg=%q", ok, msg)
	}
	// Same core count: the comparison runs and passes.
	req.rhsBench = "BenchC"
	if msg, ok := checkRequirement(cur, req); !ok {
		t.Errorf("same-core comparison failed: %q", msg)
	}
	// Same core count but violated: fails with the violation message.
	req.lhsBench, req.rhsBench = "BenchC", "BenchA"
	if msg, ok := checkRequirement(cur, req); ok || !strings.Contains(msg, "violated") {
		t.Errorf("violation not reported: ok=%v msg=%q", ok, msg)
	}
}

// TestRequireSameRunGomaxprocsMatrix pins the rule the GOMAXPROCS
// {4,8} CI matrix leans on: -require-le needs only the two RUN entries
// to agree on gomaxprocs — whatever the committed baseline recorded is
// irrelevant (checkRequirement never sees a baseline), so an 8-core leg
// gates same-run ratios without touching 1-vCPU baselines. K12's cells
// all carry the process-level suffix even though each overrides
// GOMAXPROCS internally, so its cross-core scaling ratio (gmp=8 vs
// gmp=1 cell) is same-run-legal by construction.
func TestRequireSameRunGomaxprocsMatrix(t *testing.T) {
	mk := func(lp, rp float64) map[string]map[string]float64 {
		return map[string]map[string]float64{
			"BenchmarkManyCore/protocol=barrier/gmp=8/apps=256": {"ns/op": 100, metricGomaxprocs: lp},
			"BenchmarkManyCore/protocol=barrier/gmp=1/apps=256": {"ns/op": 200, metricGomaxprocs: rp},
		}
	}
	req := requirement{
		lhsBench: "BenchmarkManyCore/protocol=barrier/gmp=8/apps=256", lhsMetric: "ns/op",
		rhsBench: "BenchmarkManyCore/protocol=barrier/gmp=1/apps=256", rhsMetric: "ns/op",
		slack: 0.625,
	}
	for _, tc := range []struct {
		name   string
		lp, rp float64
		ok     bool
	}{
		// Same run-entry gomaxprocs: allowed at every core count, even
		// ones no baseline was ever recorded at.
		{"both-1", 1, 1, true},
		{"both-4", 4, 4, true},
		{"both-8", 8, 8, true},
		{"both-16", 16, 16, true},
		// Mixed run entries: refused regardless of the values.
		{"1-vs-8", 1, 8, false},
		{"8-vs-4", 8, 4, false},
	} {
		cur := mk(tc.lp, tc.rp)
		msg, ok := checkRequirement(cur, req)
		if ok != tc.ok {
			t.Errorf("%s: checkRequirement ok=%v (%q), want ok=%v", tc.name, ok, msg, tc.ok)
		}
		if !tc.ok && !strings.Contains(msg, "refused") {
			t.Errorf("%s: mixed-core failure is not the refusal message: %q", tc.name, msg)
		}
	}
}

func TestDrift(t *testing.T) {
	for _, tc := range []struct {
		base, cur, want float64
	}{
		{100, 100, 0},
		{100, 125, 0.25},
		{100, 75, 0.25},
		{0, 0, 0},
		{0, 5, 1},
	} {
		if got := drift(tc.base, tc.cur); got != tc.want {
			t.Errorf("drift(%g,%g) = %g, want %g", tc.base, tc.cur, got, tc.want)
		}
	}
}

func TestClassify(t *testing.T) {
	for unit, want := range map[string]metricClass{
		"ns/op":       envLowerIsBetter,
		"B/op":        envLowerIsBetter,
		"allocs/op":   envLowerIsBetter,
		"samples/s":   envHigherIsBetter,
		"churn/s":     envHigherIsBetter,
		"GFLOP/epoch": deterministic,
		"ratio":       deterministic,
		"power_MW":    deterministic,
		"gomaxprocs":  informational,
		"num_cpu":     informational,
		// K12's scheduler-pressure count: parking depends on host
		// timing, so it must be one-sided env, not drift-gated like the
		// deterministic .../epoch simulation outputs.
		"wakeups/epoch": envLowerIsBetter,
	} {
		if got := classify(unit); got != want {
			t.Errorf("classify(%q) = %v, want %v", unit, got, want)
		}
	}
}

func TestParseRequirement(t *testing.T) {
	req, err := parseRequirement("BenchmarkKernelConcurrent/apps=64:ns/op<=BenchmarkKernelEpochSync/apps=64:ns/opx1.10")
	if err != nil {
		t.Fatal(err)
	}
	if req.lhsBench != "BenchmarkKernelConcurrent/apps=64" || req.lhsMetric != "ns/op" {
		t.Errorf("lhs: %+v", req)
	}
	if req.rhsBench != "BenchmarkKernelEpochSync/apps=64" || req.rhsMetric != "ns/op" {
		t.Errorf("rhs: %+v", req)
	}
	if req.slack != 1.10 {
		t.Errorf("slack: %v", req.slack)
	}
	// Without slack the factor defaults to 1.
	req, err = parseRequirement("A:m<=B:m")
	if err != nil {
		t.Fatal(err)
	}
	if req.slack != 1.0 {
		t.Errorf("default slack: %v", req.slack)
	}
	if _, err := parseRequirement("garbage"); err == nil {
		t.Error("garbage requirement accepted")
	}
}

func TestLookup(t *testing.T) {
	cur, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if v, err := lookup(cur, "BenchmarkKernelConcurrent/apps=64", "ns/op"); err != nil || v != 55971 {
		t.Errorf("lookup: %v, %v", v, err)
	}
	if _, err := lookup(cur, "BenchmarkNope", "ns/op"); err == nil {
		t.Error("missing benchmark accepted")
	}
	if _, err := lookup(cur, "BenchmarkClaimHeteroEfficiency", "nope"); err == nil {
		t.Error("missing metric accepted")
	}
}

func TestRegressed(t *testing.T) {
	const tol, timeTol = 0.25, 4.0
	for _, tc := range []struct {
		unit      string
		want, got float64
		bad       bool
	}{
		// Deterministic: symmetric at tol.
		{"ratio", 100, 120, false},
		{"ratio", 100, 130, true},
		{"ratio", 100, 70, true},
		// Lower-is-better env metric: only slower fails, at timeTol.
		{"ns/op", 100, 450, false},
		{"ns/op", 100, 600, true},
		{"ns/op", 100, 1, false}, // improvements never fail
		// Higher-is-better env metric: only a collapse fails — the
		// division form stays meaningful even with timeTol >= 1.
		{"samples/s", 1e6, 5e6, false},
		{"samples/s", 1e6, 3e5, false},
		{"samples/s", 1e6, 1e5, true},
		// Informational context is recorded, never gated: a baseline
		// written on one machine class must not fail on another.
		{"gomaxprocs", 1, 8, false},
		{"num_cpu", 1, 64, false},
	} {
		if bad, _ := regressed(tc.unit, tc.want, tc.got, tol, timeTol); bad != tc.bad {
			t.Errorf("regressed(%q, %g, %g) = %v, want %v", tc.unit, tc.want, tc.got, bad, tc.bad)
		}
	}
}
