package main

import (
	"context"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rtrm"
	"repro/internal/runtime"
	"repro/internal/simhpc"
)

// The chaos experiment stresses the backend failure domain under all
// three epoch protocols, CCBench-style: one harness, every protocol.
// Mid-run it kills (panic), stalls (deadline overrun) and resurrects
// each backend, plus one full drain/remove/re-add cycle, then asserts
// total-accounting exactness: every app's cumulative offered GFlop in
// the kernel's ledger must equal — bit for bit — what the app's own
// workload closure produced. Zero observation loss under fault, or
// the process exits non-zero.

// chaosBackend wraps a real backend with fault injection: Kill arms a
// one-shot panic inside the next RunEpoch; Stall delays the next
// RunEpoch by the given duration (one-shot as well). Stats delegate
// untouched.
type chaosBackend struct {
	inner    runtime.Backend
	killNext atomic.Bool
	stallNS  atomic.Int64
}

func (c *chaosBackend) RunEpoch(dt float64, offered []*simhpc.Task) rtrm.EpochReport {
	if d := c.stallNS.Swap(0); d > 0 {
		time.Sleep(time.Duration(d))
	}
	if c.killNext.CompareAndSwap(true, false) {
		panic("chaos: injected backend failure")
	}
	return c.inner.RunEpoch(dt, offered)
}

func (c *chaosBackend) Stats() rtrm.Stats { return c.inner.Stats() }

// chaos runs the failure-domain experiment for every protocol.
func chaos() {
	fmt.Println("== chaos: backend kill/stall/drain under every epoch protocol, exact totals required ==")
	ok := true
	for _, proto := range []runtime.EpochProtocol{
		runtime.Barrier, runtime.PerBackendClock, runtime.OptimisticMerge,
	} {
		if !chaosRun(proto) {
			ok = false
		}
	}
	if !ok {
		fmt.Println("  CHAOS: FAIL")
		os.Exit(1)
	}
	fmt.Println("  chaos: all protocols survived with exact per-app totals")
}

// chaosRun is one protocol's round: 3 backends × 9 hinted apps; each
// backend is killed and resurrected, then stalled past the commit
// deadline and auto-healed; one backend is additionally drained,
// removed and re-added. Returns false on any violated invariant.
func chaosRun(proto runtime.EpochProtocol) bool {
	const (
		nBackends = 3
		nApps     = 9
		timeout   = 25 * time.Millisecond // commit deadline
		stallFor  = 150 * time.Millisecond
	)
	fail := func(format string, args ...any) bool {
		fmt.Printf("  [%s] FAIL: %s\n", proto, fmt.Sprintf(format, args...))
		return false
	}

	kern := runtime.NewKernel()
	injectors := make([]*chaosBackend, nBackends)
	makeBackend := func(i int) *chaosBackend {
		rng := simhpc.NewRNG(uint64(100 + i))
		cluster := simhpc.NewCluster(8, 24, func(n int) *simhpc.Node {
			return simhpc.HeterogeneousNode(fmt.Sprintf("p%d-n%d", i, n), 0.15, rng)
		})
		return &chaosBackend{inner: rtrm.NewManager(cluster, cluster.FacilityPowerW(1)*0.85)}
	}
	for i := 0; i < nBackends; i++ {
		injectors[i] = makeBackend(i)
		if err := kern.AddBackend(fmt.Sprintf("b%d", i), injectors[i]); err != nil {
			return fail("add backend: %v", err)
		}
	}
	kern.SetProtocol(proto)
	kern.SetBackendTimeout(timeout)

	// Every app tracks its own expected total inside its workload
	// closure: the kernel sums each contribution's task GFlop in task
	// order, so summing the same slice the same way and accumulating
	// per call reproduces the identical float sequence — the exactness
	// assertion is ==, not within-epsilon.
	var expMu sync.Mutex
	expected := make(map[string]float64, nApps)
	gen := simhpc.NewWorkloadGen(7)
	var genMu sync.Mutex
	for i := 0; i < nApps; i++ {
		name := fmt.Sprintf("app%d", i)
		hint := fmt.Sprintf("b%d", i%nBackends)
		_, err := kern.Attach(runtime.AppSpec{
			Name:    name,
			Backend: hint, // hinted home: apps return after their backend heals
			Workload: func() ([]*simhpc.Task, error) {
				genMu.Lock()
				tasks := gen.Mix(2, 1, 1, 1, 5)
				genMu.Unlock()
				sum := 0.0
				for _, t := range tasks {
					sum += t.GFlop
				}
				expMu.Lock()
				expected[name] += sum
				expMu.Unlock()
				return tasks, nil
			},
		})
		if err != nil {
			return fail("attach %s: %v", name, err)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := kern.Start(ctx, runtime.Options{
		EpochDt:  60,
		Flush:    2 * time.Millisecond,
		Interval: 200 * time.Microsecond,
	}); err != nil {
		return fail("start: %v", err)
	}
	defer kern.Stop()

	// waitFor polls cond with a deadline; chaos transitions are
	// event-driven on the epoch path, so these settle in epochs, not
	// wall-clock — the deadline is a harness hang guard.
	waitFor := func(what string, cond func() bool) bool {
		deadline := time.Now().Add(20 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				fail("timed out waiting for %s", what)
				for _, st := range kern.BackendStats() {
					fmt.Printf("    %s: %s/%s seq=%d apps=%d lastErr=%q\n",
						st.Name, st.State, st.Health, st.Seq, st.Apps, st.LastErr)
				}
				return false
			}
			time.Sleep(500 * time.Microsecond)
		}
		return true
	}
	backendBy := func(name string) (runtime.BackendStats, bool) {
		for _, st := range kern.BackendStats() {
			if st.Name == name {
				return st, true
			}
		}
		return runtime.BackendStats{}, false
	}
	// Health polls go through the non-blocking BackendState atomics:
	// BackendStats takes the slot's commit lock on healthy backends, so
	// a stalled-but-not-yet-degraded slot would block the poll past the
	// very transition it is trying to observe.
	healthIs := func(name string, h runtime.BackendHealth) func() bool {
		return func() bool {
			_, got, ok := kern.BackendState(name)
			return ok && got == h
		}
	}
	seqAdvances := func(name string) func() bool {
		st0, _ := backendBy(name)
		return func() bool {
			st, ok := backendBy(name)
			return ok && st.Seq > st0.Seq
		}
	}

	if !waitFor("first epochs", func() bool { return kern.Epochs() >= 20 }) {
		return false
	}

	// Kill, verify liveness, resurrect, stall, auto-heal — every
	// backend in turn.
	for i := 0; i < nBackends; i++ {
		name := fmt.Sprintf("b%d", i)
		// Work must be flowing to the backend for an injected fault to
		// fire (its own pinned apps guarantee it once placement settles).
		if !waitFor(name+" committing", seqAdvances(name)) {
			return false
		}
		injectors[i].killNext.Store(true)
		if !waitFor(name+" failed", healthIs(name, runtime.BackendFailed)) {
			return false
		}
		// The kernel must keep running epochs while a backend is down:
		// the failed slot's apps evacuate, nobody's epochs stop.
		e0 := kern.Epochs()
		if !waitFor("epochs advancing with "+name+" failed", func() bool { return kern.Epochs() >= e0+10 }) {
			return false
		}
		if err := kern.ReviveBackend(name); err != nil {
			return fail("revive %s: %v", name, err)
		}
		if !waitFor(name+" healthy after revive", healthIs(name, runtime.BackendHealthy)) {
			return false
		}
		// Stall past the commit deadline: Degraded, rerouted, then
		// auto-healed when the abandoned commit finally lands.
		if !waitFor(name+" committing again", seqAdvances(name)) {
			return false
		}
		injectors[i].stallNS.Store(int64(stallFor))
		if !waitFor(name+" degraded by stall", healthIs(name, runtime.BackendDegraded)) {
			return false
		}
		if !waitFor(name+" auto-healed", healthIs(name, runtime.BackendHealthy)) {
			return false
		}
	}

	// One full lifecycle cycle: drain+remove b1 (its apps evacuate at a
	// generation boundary), then re-add it and watch the hinted apps
	// migrate home.
	if err := kern.RemoveBackend("b1"); err != nil {
		return fail("remove b1: %v", err)
	}
	if _, still := backendBy("b1"); still {
		return fail("b1 still listed after remove")
	}
	e0 := kern.Epochs()
	if !waitFor("epochs advancing without b1", func() bool { return kern.Epochs() >= e0+10 }) {
		return false
	}
	injectors[1] = makeBackend(1)
	if err := kern.AddBackend("b1", injectors[1]); err != nil {
		return fail("re-add b1: %v", err)
	}
	if !waitFor("re-added b1 committing", seqAdvances("b1")) {
		return false
	}

	if !waitFor("settle epochs", func() bool { return kern.Epochs() >= e0+50 }) {
		return false
	}
	kern.Stop()
	cancel()
	if err := kern.Err(); err != nil {
		return fail("kernel error: %v", err)
	}

	// Exactness: the ledger equals the closures' own accounting, to the
	// last bit — no contribution lost or double-counted through panics,
	// stalls, reroutes, evacuations, or the remove/re-add.
	totals := kern.TotalsPerApp()
	expMu.Lock()
	defer expMu.Unlock()
	for name, want := range expected {
		if got := totals[name]; got != want {
			return fail("total mismatch for %s: kernel %v, workload produced %v", name, got, want)
		}
	}
	fmt.Printf("  [%s] %d epochs, %d apps: kills+stalls+remove survived, totals exact\n",
		proto, kern.Epochs(), nApps)
	return true
}
