package main

import "testing"

// TestDispatchTableCoversAll: every experiment in the "all" sequence
// exists in the dispatch table and vice versa.
func TestDispatchTableCoversAll(t *testing.T) {
	if len(experimentOrder) != len(experiments) {
		t.Fatalf("order lists %d experiments, table has %d", len(experimentOrder), len(experiments))
	}
	for _, name := range experimentOrder {
		if experiments[name] == nil {
			t.Errorf("experiment %q in order but not in table", name)
		}
	}
}

// TestRunExperimentUnknownName: unknown experiments are rejected with
// an error instead of a panic or silent success.
func TestRunExperimentUnknownName(t *testing.T) {
	if err := runExperiment("nosuch"); err == nil {
		t.Fatal("unknown experiment should error")
	}
	if err := runExperiment(""); err == nil {
		t.Fatal("empty experiment should error")
	}
}

// TestRunExperimentSmoke executes the cheapest real experiments through
// the dispatch path (output goes to stdout; only success is asserted).
func TestRunExperimentSmoke(t *testing.T) {
	for _, name := range []string{"efficiency", "variability", "pue"} {
		if err := runExperiment(name); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}
