package main

// The crashloop experiment is the durability tentpole's end-to-end
// proof: a real antarex-serve process (ANTAREX_SERVE points at a
// prebuilt binary; otherwise one is built into a temp dir) is driven
// through membership churn over HTTP and SIGKILLed at a random moment
// mid-churn, repeatedly. The driver keeps a client-side shadow ledger
// of every mutation the server ACKED; after each kill the process is
// restarted from the same -data-dir and the recovered plane must match
// the ledger exactly — every acked register/detach/policy-swap/
// backend-add/remove and the protocol choice back, nothing invented.
// The one op in flight at the kill is the only tolerated ambiguity
// (it may have landed or not; both worlds are checked). One round also
// tears the WAL tail (a partial record appended to wal.log) to prove
// crash-mid-write recovery, and the final state is replayed twice to
// prove the journal fold is idempotent.

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"time"

	"repro/internal/controlplane"
)

const (
	crashRounds   = 5
	crashOpsCap   = 400 // per round; the kill usually lands far earlier
	crashKillMin  = 50 * time.Millisecond
	crashKillSpan = 250 * time.Millisecond
)

func crashloop() {
	fmt.Println("== crashloop: SIGKILL mid-churn, restart from the journal, verify against the shadow ledger ==")
	if err := crashloopRun(); err != nil {
		fmt.Printf("  CRASHLOOP: FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("  crashloop: no acked mutation lost, torn tail tolerated, double replay idempotent")
}

// serveBinary resolves the antarex-serve executable: $ANTAREX_SERVE if
// set (CI prebuilds with -race), else a fresh `go build` into dir.
func serveBinary(dir string) (string, error) {
	if p := os.Getenv("ANTAREX_SERVE"); p != "" {
		return filepath.Abs(p)
	}
	bin := filepath.Join(dir, "antarex-serve")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/antarex-serve")
	if out, err := cmd.CombinedOutput(); err != nil {
		return "", fmt.Errorf("build antarex-serve: %v\n%s", err, out)
	}
	return bin, nil
}

// ledgerApp is the driver's record of one acked tenant: the spec as
// admitted plus the policy currently installed (swaps update it).
type ledgerApp struct {
	spec   controlplane.AppSpec
	policy *controlplane.PolicySpec
}

// pendingOp is the single mutation that was in flight when the process
// died: the server may or may not have journaled it before the kill,
// so verification accepts both the before and after worlds.
type pendingOp struct {
	kind string // "register", "detach", "policy", "addbackend", "removebackend"
	name string
	app  ledgerApp                // register: the spec that may have landed
	pol  *controlplane.PolicySpec // policy: the swap that may have landed
}

// shadowLedger mirrors what the server has ACKED. It is the ground
// truth recovery is judged against.
type shadowLedger struct {
	apps     map[string]ledgerApp
	backends map[string]bool
	protocol string
	pending  *pendingOp
}

func crashloopRun() error {
	work, err := os.MkdirTemp("", "crashloop-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(work)
	bin, err := serveBinary(work)
	if err != nil {
		return err
	}
	dataDir := filepath.Join(work, "data")
	addr, err := freeAddr()
	if err != nil {
		return err
	}

	led := &shadowLedger{
		apps: map[string]ledgerApp{},
		// First boot bootstraps b0/b1 and the protocol through the
		// journaled admission paths, so the ledger starts with them.
		backends: map[string]bool{"b0": true, "b1": true},
		protocol: "clock",
	}
	rng := rand.New(rand.NewSource(43))
	var nextName int

	for round := 0; round < crashRounds; round++ {
		proc, c, err := startServe(bin, addr, dataDir)
		if err != nil {
			return fmt.Errorf("round %d: %v", round, err)
		}
		if err := led.verify(c); err != nil {
			proc.Process.Kill()
			proc.Wait()
			return fmt.Errorf("round %d: recovery mismatch: %v", round, err)
		}
		if err := led.resolvePending(c); err != nil {
			proc.Process.Kill()
			proc.Wait()
			return fmt.Errorf("round %d: pending op: %v", round, err)
		}

		// Churn until the asynchronous SIGKILL lands mid-operation.
		killAt := crashKillMin + time.Duration(rng.Int63n(int64(crashKillSpan)))
		timer := time.AfterFunc(killAt, func() { proc.Process.Kill() })
		ops := 0
		for ; ops < crashOpsCap; ops++ {
			if done, err := led.mutate(c, rng, &nextName); err != nil {
				timer.Stop()
				proc.Process.Kill()
				proc.Wait()
				return fmt.Errorf("round %d op %d: %v", round, ops, err)
			} else if done {
				break
			}
		}
		timer.Stop()
		proc.Process.Kill() // idempotent; covers the ops-cap exit
		proc.Wait()
		fmt.Printf("  round %d: killed after %d acked op(s); ledger %d app(s), %d backend(s)\n",
			round, ops, len(led.apps), len(led.backends))

		// One round recovers through a torn WAL tail: a record header
		// promising more bytes than the file holds, exactly what a crash
		// mid-write leaves behind.
		if round == crashRounds/2 {
			if err := tearTail(filepath.Join(dataDir, "wal.log")); err != nil {
				return err
			}
			fmt.Println("  round", round, "tore the WAL tail (partial record appended)")
		}
	}

	// Double replay: recover, verify, stop WITHOUT new mutations, then
	// recover the very same snapshot+tail again — the fold must be
	// idempotent, not merely crash-tolerant.
	for i := 0; i < 2; i++ {
		proc, c, err := startServe(bin, addr, dataDir)
		if err != nil {
			return fmt.Errorf("replay %d: %v", i, err)
		}
		verr := led.verify(c)
		if verr == nil {
			verr = led.resolvePending(c)
		}
		proc.Process.Kill()
		proc.Wait()
		if verr != nil {
			return fmt.Errorf("replay %d: %v", i, verr)
		}
	}
	return nil
}

// freeAddr grabs an ephemeral loopback port. The close-then-reuse
// window is benign here: nothing else binds on the harness host.
func freeAddr() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr, nil
}

// startServe launches the server against dataDir and waits until it
// answers health probes. The bootstrap flags only matter on the first
// boot; once the journal exists the server ignores them.
func startServe(bin, addr, dataDir string) (*exec.Cmd, *controlplane.Client, error) {
	cmd := exec.Command(bin,
		"-addr", addr,
		"-data-dir", dataDir,
		"-backends", "2",
		"-protocol", "clock",
		"-snapshot-every", "32",
	)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, nil, err
	}
	c := controlplane.NewClient("http://"+addr, nil)
	deadline := time.Now().Add(30 * time.Second)
	for {
		if h, err := c.Health(); err == nil && h.Running {
			return cmd, c, nil
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			return nil, nil, fmt.Errorf("server on %s never became healthy", addr)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// mutate performs one random acked mutation, updating the ledger only
// on ack. A transport error (no HTTP response — the kill landed) files
// the op as pending and reports the round done; an API error is a
// server-refused op (e.g. a raced duplicate) and mutates nothing.
func (l *shadowLedger) mutate(c *controlplane.Client, rng *rand.Rand, nextName *int) (done bool, err error) {
	classify := func(err error) (bool, error) {
		if err == nil {
			return false, nil
		}
		var api *controlplane.APIError
		if errors.As(err, &api) {
			l.pending = nil
			return false, fmt.Errorf("server refused: %w", api)
		}
		return true, nil // transport death: op stays pending
	}
	switch k := rng.Intn(10); {
	case k < 5: // register
		*nextName++
		app := ledgerApp{spec: randomSpec(rng, fmt.Sprintf("a%03d", *nextName), l.liveBackends())}
		app.policy = app.spec.Policy
		l.pending = &pendingOp{kind: "register", name: app.spec.Name, app: app}
		if _, err := c.Register(app.spec); err != nil {
			return classify(err)
		}
		l.apps[app.spec.Name] = app
	case k < 7: // detach
		name, ok := l.randomApp(rng)
		if !ok {
			return false, nil
		}
		l.pending = &pendingOp{kind: "detach", name: name}
		if err := c.Detach(name); err != nil {
			return classify(err)
		}
		delete(l.apps, name)
	case k < 9: // policy swap
		name, ok := l.randomApp(rng)
		if !ok {
			return false, nil
		}
		p := randomPolicy(rng)
		l.pending = &pendingOp{kind: "policy", name: name, pol: p}
		if _, err := c.PutPolicy(name, *p); err != nil {
			return classify(err)
		}
		app := l.apps[name]
		app.policy = p
		l.apps[name] = app
	default: // backend lifecycle: add up to 5, remove down to 1
		if len(l.backends) < 5 && rng.Intn(2) == 0 {
			*nextName++
			spec := controlplane.BackendSpec{
				Name: fmt.Sprintf("x%03d", *nextName), Nodes: 2,
				AmbientC: 22, CapFrac: 0.9, Vary: 0.05, Seed: uint64(*nextName),
			}
			l.pending = &pendingOp{kind: "addbackend", name: spec.Name}
			if _, err := c.AddBackend(spec); err != nil {
				return classify(err)
			}
			l.backends[spec.Name] = true
		} else if len(l.backends) > 1 {
			name := l.liveBackends()[rng.Intn(len(l.backends))]
			l.pending = &pendingOp{kind: "removebackend", name: name}
			if _, err := c.RemoveBackend(name); err != nil {
				return classify(err)
			}
			delete(l.backends, name)
		}
	}
	l.pending = nil
	return false, nil
}

func (l *shadowLedger) randomApp(rng *rand.Rand) (string, bool) {
	if len(l.apps) == 0 {
		return "", false
	}
	names := make([]string, 0, len(l.apps))
	for n := range l.apps {
		names = append(names, n)
	}
	return names[rng.Intn(len(names))], true
}

func (l *shadowLedger) liveBackends() []string {
	names := make([]string, 0, len(l.backends))
	for n := range l.backends {
		names = append(names, n)
	}
	return names
}

// randomSpec covers the whole journaled surface of an AppSpec: some
// tenants pinned, some metered, policies across both arms.
func randomSpec(rng *rand.Rand, name string, backends []string) controlplane.AppSpec {
	spec := controlplane.AppSpec{
		Name:   name,
		Goals:  []controlplane.GoalSpec{{Metric: "latency", Target: 1}},
		Policy: randomPolicy(rng),
	}
	if len(backends) > 0 && rng.Intn(2) == 0 {
		spec.Placement = backends[rng.Intn(len(backends))]
	}
	if rng.Intn(2) == 0 {
		spec.Quota = &controlplane.QuotaSpec{Rate: float64(10 + rng.Intn(90)), Burst: float64(1 + rng.Intn(20))}
	}
	return spec
}

func randomPolicy(rng *rand.Rand) *controlplane.PolicySpec {
	if rng.Intn(2) == 0 {
		levels := []float64{1, 0.5, 0.25, 0.125}[:2+rng.Intn(3)]
		return &controlplane.PolicySpec{Type: controlplane.PolicyLadder, Levels: levels}
	}
	return &controlplane.PolicySpec{
		Type: controlplane.PolicyDSL,
		Source: `
aspectdef Steer
	input gain end
	apply
		do Scale('level', gain);
	end
	condition violation > 0 end
end
`,
		Params: map[string]float64{"gain": 0.5},
	}
}

// verify compares the recovered plane against every acked mutation.
// The pending op's entities are exempted here and settled by
// resolvePending; everything else must match exactly.
func (l *shadowLedger) verify(c *controlplane.Client) error {
	apps, err := c.Apps()
	if err != nil {
		return err
	}
	got := map[string]controlplane.AppStatus{}
	for _, a := range apps {
		got[a.Name] = a
	}
	skip := func(name string) bool { return l.pending != nil && l.pending.name == name }
	for name, want := range l.apps {
		if skip(name) {
			continue
		}
		st, ok := got[name]
		if !ok {
			return fmt.Errorf("acked app %q lost", name)
		}
		if err := matchApp(st, want); err != nil {
			return fmt.Errorf("app %q: %v", name, err)
		}
	}
	for name := range got {
		if _, ok := l.apps[name]; !ok && !skip(name) {
			return fmt.Errorf("recovery invented app %q", name)
		}
	}

	backends, err := c.Backends()
	if err != nil {
		return err
	}
	gotB := map[string]bool{}
	for _, b := range backends {
		gotB[b.Name] = true
	}
	for name := range l.backends {
		if !gotB[name] && !skip(name) {
			return fmt.Errorf("acked backend %q lost", name)
		}
	}
	for name := range gotB {
		if !l.backends[name] && !skip(name) {
			return fmt.Errorf("removed backend %q came back", name)
		}
	}

	ep, err := c.Epochs()
	if err != nil {
		return err
	}
	if ep.Protocol != l.protocol {
		return fmt.Errorf("protocol %q, ledger says %q", ep.Protocol, l.protocol)
	}
	return nil
}

// matchApp checks one recovered tenant against its acked record:
// placement hint, quota, and the installed policy (ladder levels, or a
// recompiled DSL program evidenced by its source hash).
func matchApp(st controlplane.AppStatus, want ledgerApp) error {
	if st.Placement != want.spec.Placement {
		return fmt.Errorf("placement %q, want %q", st.Placement, want.spec.Placement)
	}
	if q := want.spec.Quota; q != nil {
		if st.Quota == nil || st.Quota.Rate != q.Rate || st.Quota.Burst != q.Burst {
			return fmt.Errorf("quota %+v, want %+v", st.Quota, q)
		}
	} else if st.Quota != nil {
		return fmt.Errorf("quota %+v invented", st.Quota)
	}
	return matchPolicy(st.Policy, want.policy)
}

func matchPolicy(st *controlplane.PolicyStatus, want *controlplane.PolicySpec) error {
	if want == nil {
		return nil // server default; nothing journaled to compare
	}
	if st == nil || st.Type != want.Type {
		return fmt.Errorf("policy %+v, want type %s", st, want.Type)
	}
	switch want.Type {
	case controlplane.PolicyLadder:
		if len(st.Levels) != len(want.Levels) {
			return fmt.Errorf("ladder %v, want %v", st.Levels, want.Levels)
		}
		for i := range st.Levels {
			if st.Levels[i] != want.Levels[i] {
				return fmt.Errorf("ladder %v, want %v", st.Levels, want.Levels)
			}
		}
	case controlplane.PolicyDSL:
		if st.SourceHash == "" {
			return errors.New("recovered DSL policy was not recompiled (no source hash)")
		}
	}
	return nil
}

// resolvePending settles the one ambiguous op by observing which world
// the recovery landed in, then folds that world into the ledger.
func (l *shadowLedger) resolvePending(c *controlplane.Client) error {
	p := l.pending
	if p == nil {
		return nil
	}
	l.pending = nil
	switch p.kind {
	case "register":
		st, err := c.App(p.name)
		if controlplane.IsNotFound(err) {
			return nil // did not land
		}
		if err != nil {
			return err
		}
		if err := matchApp(st, p.app); err != nil {
			return fmt.Errorf("half-landed register %q: %v", p.name, err)
		}
		l.apps[p.name] = p.app
	case "detach":
		if _, err := c.App(p.name); controlplane.IsNotFound(err) {
			delete(l.apps, p.name)
		} else if err != nil {
			return err
		}
	case "policy":
		st, err := c.App(p.name)
		if controlplane.IsNotFound(err) {
			return fmt.Errorf("policy target %q vanished", p.name)
		}
		if err != nil {
			return err
		}
		app := l.apps[p.name]
		if matchPolicy(st.Policy, p.pol) == nil {
			app.policy = p.pol // the swap landed
			l.apps[p.name] = app
			return nil
		}
		if err := matchPolicy(st.Policy, app.policy); err != nil {
			return fmt.Errorf("app %q holds neither old nor new policy: %v", p.name, err)
		}
	case "addbackend", "removebackend":
		backends, err := c.Backends()
		if err != nil {
			return err
		}
		present := false
		for _, b := range backends {
			if b.Name == p.name {
				present = true
			}
		}
		l.backends[p.name] = present
		if !present {
			delete(l.backends, p.name)
		}
	}
	return nil
}

// tearTail appends a truncated record to the WAL: a varint length
// promising a payload the file does not contain — byte-identical to a
// crash between the header write and the payload write. Recovery must
// discard it silently.
func tearTail(walPath string) error {
	f, err := os.OpenFile(walPath, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	// Length 200, then only 3 of the promised bytes.
	_, err = f.Write([]byte{200, 1, 0x01, 0x02, 0x03})
	return err
}
