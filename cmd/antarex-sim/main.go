// antarex-sim runs the cluster-level experiments of the reproduction
// from the command line and prints the paper-vs-measured tables.
//
// Usage:
//
//	antarex-sim efficiency    # C1: hetero vs homog MFLOPS/W
//	antarex-sim variability   # C2: 15% component variation
//	antarex-sim governor      # C3: optimal vs Linux-default savings
//	antarex-sim pue           # C4: seasonal PUE + MS3 mitigation
//	antarex-sim powercap      # C5: throughput under the power envelope
//	antarex-sim docking       # U1: load-balancing comparison
//	antarex-sim kernel        # concurrent adaptation kernel: N apps, one RTRM
//	antarex-sim all           # everything
//
// Offline profile capture wraps any experiment:
//
//	antarex-sim -cpuprofile cpu.out -memprofile mem.out kernel
//	go tool pprof cpu.out
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	goruntime "runtime"
	"runtime/pprof"
	"sync"
	"time"

	"repro/internal/apps/dock"
	"repro/internal/autotune"
	"repro/internal/monitor"
	"repro/internal/rtrm"
	"repro/internal/runtime"
	"repro/internal/simhpc"
)

// experimentOrder is the "all" sequence; experiments maps names to
// runnable experiments (the dispatch table exercised by main_test.go).
var experimentOrder = []string{"efficiency", "variability", "governor", "pue", "powercap", "docking", "kernel", "chaos", "crashloop"}

var experiments = map[string]func(){
	"efficiency":  efficiency,
	"variability": variability,
	"governor":    governor,
	"pue":         pue,
	"powercap":    powercap,
	"docking":     docking,
	"kernel":      kernelDemo,
	"chaos":       chaos,
	"crashloop":   crashloop,
}

// runExperiment dispatches one experiment (or "all"), returning an
// error for unknown names.
func runExperiment(name string) error {
	if name == "all" {
		for _, n := range experimentOrder {
			experiments[n]()
			fmt.Println()
		}
		return nil
	}
	fn, ok := experiments[name]
	if !ok {
		return fmt.Errorf("antarex-sim: unknown experiment %q", name)
	}
	fn()
	return nil
}

func main() {
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the experiment run to this file (go tool pprof)")
	memProfile := flag.String("memprofile", "", "write a heap profile after the experiment run to this file")
	flag.Parse()
	cmd := "all"
	if flag.NArg() > 0 {
		cmd = flag.Arg(0)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "antarex-sim: -cpuprofile: %v\n", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "antarex-sim: -cpuprofile: %v\n", err)
			os.Exit(2)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if err := runExperiment(cmd); err != nil {
		pprof.StopCPUProfile() // no-op when not started; os.Exit skips defers
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "antarex-sim: -memprofile: %v\n", err)
			os.Exit(2)
		}
		goruntime.GC() // settle the heap so the profile shows live objects
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "antarex-sim: -memprofile: %v\n", err)
			os.Exit(2)
		}
		f.Close()
	}
}

func efficiency() {
	fmt.Println("== C1: heterogeneous vs homogeneous efficiency (paper §I: 7032 vs 2304 MFLOPS/W, ~3x) ==")
	het := simhpc.HeterogeneousNode("h", 0, nil)
	hom := simhpc.HomogeneousNode("o", 0, nil)
	he := het.EfficiencyGFLOPSPerW() * 1000
	ho := hom.EfficiencyGFLOPSPerW() * 1000
	fmt.Printf("  heterogeneous node (CPU+2 GPGPU): %7.0f MFLOPS/W\n", he)
	fmt.Printf("  homogeneous node (2 CPU):         %7.0f MFLOPS/W\n", ho)
	fmt.Printf("  ratio: %.2fx\n", he/ho)
}

func variability() {
	fmt.Println("== C2: energy variation across instances of the same component (paper §V: 15%) ==")
	rng := simhpc.NewRNG(42)
	task := &simhpc.Task{GFlop: 100, MemGB: 2}
	var min, max, sum float64
	const n = 64
	for i := 0; i < n; i++ {
		d := simhpc.NewDevice(simhpc.XeonCPUSpec(), "d", 0.15, rng)
		e := d.ExecEnergy(task, d.Spec.MaxPState())
		if i == 0 || e < min {
			min = e
		}
		if e > max {
			max = e
		}
		sum += e
	}
	fmt.Printf("  %d instances, same binary: min %.1f J, max %.1f J, spread %.1f%% of mean\n",
		n, min, max, (max-min)/(sum/n)*100)
}

func governor() {
	fmt.Println("== C3: optimal operating point vs Linux default governor (paper §V: 18-50% savings) ==")
	gen := simhpc.NewWorkloadGen(3)
	apps := []struct {
		name  string
		tasks []*simhpc.Task
	}{
		{"memory-bound", []*simhpc.Task{gen.MemoryBound(100), gen.MemoryBound(60)}},
		{"balanced", []*simhpc.Task{gen.Balanced(100), gen.Balanced(60)}},
		{"compute-bound", []*simhpc.Task{gen.ComputeBound(100), gen.ComputeBound(60)}},
	}
	for _, app := range apps {
		d := simhpc.NewDevice(simhpc.XeonCPUSpec(), "d", 0, nil)
		base, opt, saving := rtrm.GovernorSavings(d, app.tasks, 0)
		fmt.Printf("  %-14s ondemand: %7.1f J  optimal: %7.1f J  saving: %4.1f%%  (slowdown %.2fx)\n",
			app.name, base.EnergyJ, opt.EnergyJ, saving*100, opt.TimeS/base.TimeS)
	}
}

func pue() {
	fmt.Println("== C4: seasonal PUE and MS3 mitigation (paper §V: >10% loss winter→summer) ==")
	cool := simhpc.DefaultCooling()
	w, s := cool.PUE(15), cool.PUE(35)
	fmt.Printf("  PUE at 15C (winter): %.3f   at 35C (summer): %.3f   loss: %.1f%%\n", w, s, (s-w)/w*100)
	hot := simhpc.NewCluster(8, 35, func(int) *simhpc.Node { return simhpc.HomogeneousNode("n", 0, nil) })
	ms3 := rtrm.NewMS3()
	plan := ms3.Decide(hot)
	naive := rtrm.Plan{AdmitFraction: 1, PUE: hot.Cooling.PUE(hot.AmbientC)}
	fmt.Printf("  MS3 summer plan: admit %.0f%%, cooling boost %.2f, PUE %.3f\n",
		plan.AdmitFraction*100, plan.CoolingBoost, plan.PUE)
	fmt.Printf("  energy-to-solution: MS3 %.2e J vs naive %.2e J (%.1f%% saved)\n",
		ms3.EnergyToSolution(hot, plan, 1e6), ms3.EnergyToSolution(hot, naive, 1e6),
		(1-ms3.EnergyToSolution(hot, plan, 1e6)/ms3.EnergyToSolution(hot, naive, 1e6))*100)
}

func powercap() {
	fmt.Println("== C5: throughput under the facility power envelope (paper §I: 20 MW target) ==")
	rng := simhpc.NewRNG(17)
	c := simhpc.NewCluster(64, 20, func(i int) *simhpc.Node {
		if i%2 == 0 {
			return simhpc.HeterogeneousNode("h", 0.15, rng)
		}
		return simhpc.HomogeneousNode("c", 0.15, rng)
	})
	full := c.FacilityPowerW(1)
	fmt.Printf("  64-node mixed cluster: peak %.0f GFLOPS at %.0f kW facility\n", c.PeakGFLOPS(), full/1000)
	for _, frac := range []float64{1.0, 0.9, 0.85, 0.8} {
		cap := rtrm.PowerCapper{CapW: full * frac}
		g := cap.Apply(c, 1)
		u := cap.UniformCap(c, 1)
		fmt.Printf("  cap %3.0f%%: greedy %7.0f GFLOPS (%4.1f%%)  uniform %7.0f GFLOPS (%4.1f%%)  demotions %d\n",
			frac*100, g.ThroughputGFLOPS, g.ThroughputGFLOPS/c.PeakGFLOPS()*100,
			u.ThroughputGFLOPS, u.ThroughputGFLOPS/c.PeakGFLOPS()*100, g.Demotions)
	}
}

func docking() {
	fmt.Println("== U1: docking load balancing under heavy-tailed ligand costs (paper §VII-a) ==")
	for _, alpha := range []float64{1.2, 1.4, 1.8} {
		fmt.Printf("  Pareto alpha=%.1f (heavier tail = smaller alpha):\n", alpha)
		for _, r := range dock.Campaign(8, 400, alpha, 42) {
			fmt.Printf("    %s\n", r)
		}
	}
}

func kernelDemo() {
	fmt.Println("== concurrent adaptation kernel: 8 adaptive apps on one shared RTRM ==")
	const nApps = 8
	rng := simhpc.NewRNG(29)
	cluster := simhpc.NewCluster(16, 24, func(i int) *simhpc.Node {
		return simhpc.HeterogeneousNode(fmt.Sprintf("n%d", i), 0.15, rng)
	})
	kern := runtime.NewKernel(rtrm.NewManager(cluster, cluster.FacilityPowerW(1)*0.85))

	gen := simhpc.NewWorkloadGen(31)
	var genMu sync.Mutex
	type appState struct {
		inbox *runtime.Inbox
		ctl   *runtime.Controller
		level float64
		mu    sync.Mutex
	}
	states := make([]*appState, nApps)
	for i := 0; i < nApps; i++ {
		st := &appState{inbox: &runtime.Inbox{}, level: 8}
		states[i] = st
		ctl, err := kern.Attach(runtime.AppSpec{
			Name: fmt.Sprintf("app%d", i),
			SLA: monitor.SLA{Goals: []monitor.Goal{
				{Metric: monitor.MetricLatency, Stat: "p95", Relation: monitor.AtMost, Target: 1.0},
			}},
			Window:   32,
			Debounce: 2,
			Sensor:   st.inbox,
			Policy: runtime.PolicyFunc(func(monitor.Decision, map[string]monitor.Summary) (autotune.Config, bool) {
				st.mu.Lock()
				defer st.mu.Unlock()
				if st.level <= 1 {
					return nil, false
				}
				return autotune.Config{"level": st.level / 2}, true
			}),
			Knob: runtime.KnobFunc(func(cfg autotune.Config) {
				st.mu.Lock()
				st.level = cfg["level"]
				st.mu.Unlock()
			}),
			Workload: func() ([]*simhpc.Task, error) {
				st.mu.Lock()
				n := int(st.level)
				st.mu.Unlock()
				genMu.Lock()
				defer genMu.Unlock()
				return gen.Mix(n, 1, 1, 1, 10), nil
			},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		st.ctl = ctl
	}

	// Telemetry producers: the odd apps run hot (SLA-violating latency)
	// and must shed load; the even apps stay healthy.
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i, st := range states {
		wg.Add(1)
		go func(i int, st *appState) {
			defer wg.Done()
			lat := 0.2
			if i%2 == 1 {
				lat = 3.0
			}
			for ctx.Err() == nil {
				st.inbox.Push(monitor.MetricLatency, lat)
				time.Sleep(500 * time.Microsecond)
			}
		}(i, st)
	}

	start := time.Now()
	if err := kern.Start(ctx, runtime.Options{EpochDt: 60, Flush: 5 * time.Millisecond}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		cancel()
		wg.Wait()
		return
	}
	for kern.Epochs() < 200 {
		time.Sleep(time.Millisecond)
	}
	kern.Stop()
	cancel()
	wg.Wait()
	elapsed := time.Since(start)

	stats := kern.ManagerStats()
	totals := kern.TotalsPerApp()
	fmt.Printf("  %d epochs across %d apps in %v (%.0f epochs/s)\n",
		kern.Epochs(), nApps, elapsed.Round(time.Millisecond),
		float64(kern.Epochs())/elapsed.Seconds())
	eff := 0.0
	if stats.EnergyJ > 0 {
		eff = stats.WorkGFlop / stats.EnergyJ
	}
	fmt.Printf("  cluster: %.1f TFLOP done, %.2f MJ, efficiency %.3f GFLOP/J\n",
		stats.WorkGFlop/1000, stats.EnergyJ/1e6, eff)
	for i, st := range states {
		st.mu.Lock()
		level := st.level
		st.mu.Unlock()
		fmt.Printf("  app%d: %7.1f GFLOP  ticks %4d  adaptations %d  level %g\n",
			i, totals[fmt.Sprintf("app%d", i)], st.ctl.Ticks(), st.ctl.Adaptations(), level)
	}
}
