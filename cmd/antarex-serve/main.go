// Command antarex-serve runs the adaptation kernel as a multi-tenant
// HTTP service: a simulated heterogeneous cluster under one
// rtrm.Manager, the concurrent kernel started empty, and the
// controlplane API on -addr. Remote applications register, stream
// observations and detach while the kernel is running — membership
// changes are admitted and drained at epoch boundaries.
//
//	go run ./cmd/antarex-serve -addr :8077
//	curl -s localhost:8077/healthz
//	curl -s -X POST localhost:8077/v1/apps -d '{"name":"web","goals":[{"metric":"latency","target":1}],"workload":{"tasks":2,"gflop":4},"levels":[1,0.5,0.25]}'
//	curl -s -X POST localhost:8077/v1/apps/web/observations -d '{"samples":[{"metric":"latency","value":2.2}]}'
//	curl -s localhost:8077/v1/epochs
//	curl -s -X DELETE localhost:8077/v1/apps/web
//
// High-rate telemetry should use the binary paths instead of JSON:
// POST /v1/apps/{id}/observations:binary for one-shot frame batches
// and the persistent POST /v1/stream (controlplane.Client.Stream from
// Go; `examples/remote -stream` demonstrates both ends) — ~8× the
// JSON ingest rate on the baseline host, gated as K6.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/controlplane"
	"repro/internal/rtrm"
	"repro/internal/runtime"
	"repro/internal/simhpc"
)

func main() {
	var (
		addr     = flag.String("addr", ":8077", "HTTP listen address")
		nodes    = flag.Int("nodes", 8, "simulated cluster nodes")
		hetero   = flag.Bool("hetero", true, "alternate heterogeneous/homogeneous nodes")
		ambient  = flag.Float64("ambient", 22, "ambient temperature (C)")
		capFrac  = flag.Float64("cap-frac", 0.9, "facility power cap as a fraction of peak")
		vary     = flag.Float64("vary", 0.15, "component manufacturing variability")
		seed     = flag.Uint64("seed", 42, "cluster RNG seed")
		epochDt  = flag.Float64("epoch-dt", 60, "simulated seconds per manager epoch")
		flush    = flag.Duration("flush", 20*time.Millisecond, "epoch scheduler straggler flush bound")
		interval = flag.Duration("interval", 5*time.Millisecond, "pacing between an app's epochs (0 = unpaced)")
	)
	flag.Parse()

	rng := simhpc.NewRNG(*seed)
	cluster := simhpc.NewCluster(*nodes, *ambient, func(i int) *simhpc.Node {
		if *hetero && i%2 == 0 {
			return simhpc.HeterogeneousNode(fmt.Sprintf("n%d", i), *vary, rng)
		}
		return simhpc.HomogeneousNode(fmt.Sprintf("n%d", i), *vary, rng)
	})
	mgr := rtrm.NewManager(cluster, cluster.FacilityPowerW(1)**capFrac)
	kernel := runtime.NewKernel(mgr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := kernel.Start(ctx, runtime.Options{
		EpochDt:  *epochDt,
		Flush:    *flush,
		Interval: *interval,
	}); err != nil {
		log.Fatalf("antarex-serve: start kernel: %v", err)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           controlplane.NewServer(kernel),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() {
		<-ctx.Done()
		shctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(shctx)
	}()

	log.Printf("antarex-serve: %d-node cluster (cap %.0f W), control plane on %s", *nodes, mgr.Capper.CapW, *addr)
	err := srv.ListenAndServe()
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		kernel.Stop()
		log.Fatalf("antarex-serve: %v", err)
	}
	// Graceful path: HTTP drained; now quiesce the kernel.
	kernel.Stop()
	stats := kernel.ManagerStats()
	log.Printf("antarex-serve: stopped after %d epochs, %.1f GFLOP done, %.1f J, membership epoch %d",
		kernel.Epochs(), stats.WorkGFlop, stats.EnergyJ, kernel.Generation())
}
