// Command antarex-serve runs the adaptation kernel as a multi-tenant
// HTTP service: one or more simulated clusters, each under its own
// rtrm.Manager backend, the concurrent kernel started empty with a
// placement policy routing each tenant's epoch batches to a backend,
// and the controlplane API on -addr. Remote applications register,
// stream observations and detach while the kernel is running —
// membership changes, backend additions and placement migrations all
// land at epoch boundaries.
//
//	go run ./cmd/antarex-serve -addr :8077 -backends 2 -placement sla
//	curl -s localhost:8077/healthz
//	curl -s localhost:8077/v1/backends
//	curl -s -X POST localhost:8077/v1/backends -d '{"name":"edge","nodes":4,"ambient_c":30}'
//	curl -s -X DELETE localhost:8077/v1/backends/edge    # drain + remove (apps evacuate)
//	curl -s -X POST localhost:8077/v1/apps -d '{"name":"web","placement":"b1","goals":[{"metric":"latency","target":1}],"workload":{"tasks":2,"gflop":4},"policy":{"type":"ladder","levels":[1,0.5,0.25]}}'
//	curl -s -X POST localhost:8077/v1/apps/web/observations -d '{"samples":[{"metric":"latency","value":2.2}]}'
//	curl -s -X PUT localhost:8077/v1/apps/web/policy -d '{"type":"dsl","source":"aspectdef S apply do Set('"'"'level'"'"', 0.5); end condition violation > 0 end end"}'
//	curl -s localhost:8077/v1/epochs
//	curl -sN localhost:8077/v1/epochs/stream    # server-sent epoch events
//	curl -s -X DELETE localhost:8077/v1/apps/web
//
// With -auth-token (or ANTAREX_AUTH_TOKEN), every mutating route
// requires "Authorization: Bearer <token>"; reads stay open.
//
// With -data-dir, the control plane is durable: every mutating route
// (register, detach, policy swap, backend add/remove, protocol choice)
// is journaled into <dir>/wal.log — CRC-framed, fsynced with group
// commit before the HTTP ack — and folded into <dir>/snapshot.db every
// -snapshot-every records. On restart the recovered membership is
// restored (tenants re-admitted, DSL policies recompiled, backends
// rebuilt, placement hints and protocol reinstated) before the
// listener opens; the -backends/-protocol bootstrap flags apply only
// to a first boot and are ignored once a journal exists. A torn final
// record (crash mid-write) is discarded silently; real corruption
// refuses to serve. Without -data-dir nothing changes: the plane is
// memory-only.
//
// High-rate telemetry should use the binary paths instead of JSON:
// POST /v1/apps/{id}/observations:binary for one-shot frame batches
// and the persistent POST /v1/stream (controlplane.Client.Stream from
// Go; `examples/remote -stream` demonstrates both ends) — ~8× the
// JSON ingest rate on the baseline host, gated as K6.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/controlplane"
	"repro/internal/durable"
	"repro/internal/runtime"
)

// buildKernel assembles an empty kernel under the named placement
// policy; backends join later (bootstrap flags or journal recovery).
func buildKernel(policy string) (*runtime.Kernel, error) {
	kernel := runtime.NewKernel()
	switch policy {
	case "pinned":
		kernel.SetPlacement(runtime.Pinned{})
	case "least-loaded":
		kernel.SetPlacement(runtime.LeastLoaded{})
	case "sla":
		kernel.SetPlacement(runtime.NewSLAAware(0))
	default:
		return nil, fmt.Errorf("unknown placement policy %q (pinned|least-loaded|sla)", policy)
	}
	return kernel, nil
}

// bootstrapSpecs expands the -backends/-nodes/... flags into the
// b0..bN-1 backend declarations of a fresh plane.
func bootstrapSpecs(nBackends int, spec controlplane.BackendSpec) ([]controlplane.BackendSpec, error) {
	if nBackends < 1 {
		return nil, fmt.Errorf("need at least 1 backend, got %d", nBackends)
	}
	specs := make([]controlplane.BackendSpec, nBackends)
	for i := range specs {
		s := spec
		s.Name = fmt.Sprintf("b%d", i)
		s.Seed += uint64(i)
		specs[i] = s
	}
	return specs, nil
}

func main() {
	var (
		addr      = flag.String("addr", ":8077", "HTTP listen address")
		nBackends = flag.Int("backends", 1, "resource-manager backends (simulated sites) to start with; more via POST /v1/backends")
		placement = flag.String("placement", "least-loaded", "placement policy: pinned, least-loaded or sla")
		protocol  = flag.String("protocol", "barrier", "epoch commit protocol: barrier, clock or optimistic")
		authToken = flag.String("auth-token", os.Getenv("ANTAREX_AUTH_TOKEN"), "bearer token required on mutating routes (empty: auth off; also via ANTAREX_AUTH_TOKEN)")
		nodes     = flag.Int("nodes", 8, "simulated cluster nodes per backend")
		hetero    = flag.Bool("hetero", true, "alternate heterogeneous/homogeneous nodes")
		ambient   = flag.Float64("ambient", 22, "ambient temperature (C)")
		capFrac   = flag.Float64("cap-frac", 0.9, "facility power cap as a fraction of peak")
		vary      = flag.Float64("vary", 0.15, "component manufacturing variability")
		seed      = flag.Uint64("seed", 42, "cluster RNG seed (backend i uses seed+i)")
		epochDt   = flag.Float64("epoch-dt", 60, "simulated seconds per manager epoch")
		flush     = flag.Duration("flush", 20*time.Millisecond, "epoch scheduler straggler flush bound")
		interval  = flag.Duration("interval", 5*time.Millisecond, "pacing between an app's epochs (0 = unpaced)")
		beTimeout = flag.Duration("backend-timeout", 2*time.Second, "per-backend commit deadline before the slot is marked degraded and evacuated (0 = disabled)")
		shutdownT = flag.Duration("shutdown-timeout", 10*time.Second, "bound on graceful HTTP shutdown; connections still open after it (e.g. SSE streams) are closed forcibly")
		pprofAddr = flag.String("pprof", "", "pprof listen address on a separate loopback listener, e.g. 127.0.0.1:6060 (empty = profiling off; never mounted on the public mux)")
		dataDir   = flag.String("data-dir", "", "durability directory (WAL + snapshots); empty = memory-only control plane")
		syncWin   = flag.Duration("sync-window", 0, "journal group-commit window: appends landing within it share one fsync (0 = fsync per commit group as fast as the disk allows)")
		snapEvery = flag.Int("snapshot-every", 256, "journaled records between snapshots (bounds WAL growth and replay time)")
	)
	flag.Parse()

	kernel, err := buildKernel(*placement)
	if err != nil {
		log.Fatalf("antarex-serve: %v", err)
	}

	// Durability: open (and recover) the journal before anything else —
	// a corrupt journal must refuse to serve, and recovered state must
	// be live before the listener opens.
	var (
		jlog  *durable.Log
		state controlplane.PlaneState
	)
	if *dataDir != "" {
		if err := os.MkdirAll(*dataDir, 0o755); err != nil {
			log.Fatalf("antarex-serve: %v", err)
		}
		jlog, err = durable.Open(*dataDir, durable.Options{SyncWindow: *syncWin})
		if err != nil {
			log.Fatalf("antarex-serve: open journal: %v", err)
		}
		state, err = controlplane.RecoverPlane(jlog)
		if err != nil {
			log.Fatalf("antarex-serve: recover: %v", err)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Profiling listener: its own mux on its own (loopback) address,
	// deliberately not a route on the control-plane handler — the public
	// mux must never expose pprof, with or without -auth-token. The
	// handlers are registered explicitly instead of importing the
	// net/http/pprof side effects into http.DefaultServeMux, so nothing
	// leaks if some library serves DefaultServeMux later.
	if *pprofAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		psrv := &http.Server{Addr: *pprofAddr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
		go func() {
			log.Printf("antarex-serve: pprof on %s", *pprofAddr)
			if err := psrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("antarex-serve: pprof listener: %v", err)
			}
		}()
		go func() {
			<-ctx.Done()
			_ = psrv.Close()
		}()
	}

	// Log backend state transitions (panic → failed, stall → degraded,
	// drain/remove lifecycle) as they happen; the channel dies with the
	// process, no cleanup needed.
	events, _ := kernel.BackendEvents()
	go func() {
		for ev := range events {
			if ev.Reason != "" {
				log.Printf("antarex-serve: backend %s: %s/%s (%s)", ev.Backend, ev.State, ev.Health, ev.Reason)
			} else {
				log.Printf("antarex-serve: backend %s: %s/%s", ev.Backend, ev.State, ev.Health)
			}
		}
	}()
	var opts []controlplane.ServerOption
	if *authToken != "" {
		opts = append(opts, controlplane.WithAuthToken(*authToken))
	}
	if jlog != nil {
		opts = append(opts, controlplane.WithJournal(jlog, *snapEvery))
	}
	cp := controlplane.NewServer(kernel, opts...)

	// Membership before the listener: a recovered journal wins over the
	// bootstrap flags (they described the first boot, the journal
	// describes everything acked since); a fresh plane bootstraps its
	// flags through the journaled paths so they survive the next boot.
	if jlog != nil && !state.Empty() {
		if err := cp.Restore(state); err != nil {
			log.Fatalf("antarex-serve: restore: %v", err)
		}
		log.Printf("antarex-serve: recovered %d app(s), %d backend(s), protocol %s from %s (bootstrap flags ignored)",
			len(state.Apps), len(state.Backends), kernel.Protocol(), *dataDir)
	} else {
		specs, err := bootstrapSpecs(*nBackends, controlplane.BackendSpec{
			Nodes:    *nodes,
			Hetero:   *hetero,
			AmbientC: *ambient,
			CapFrac:  *capFrac,
			Vary:     *vary,
			Seed:     *seed,
		})
		if err != nil {
			log.Fatalf("antarex-serve: %v", err)
		}
		for _, s := range specs {
			if err := cp.AdmitBackend(s); err != nil {
				log.Fatalf("antarex-serve: backend %s: %v", s.Name, err)
			}
		}
		if err := cp.UseProtocol(*protocol); err != nil {
			log.Fatalf("antarex-serve: %v", err)
		}
	}
	kernel.SetBackendTimeout(*beTimeout)

	if err := kernel.Start(ctx, runtime.Options{
		EpochDt:  *epochDt,
		Flush:    *flush,
		Interval: *interval,
	}); err != nil {
		log.Fatalf("antarex-serve: start kernel: %v", err)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           cp,
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() {
		<-ctx.Done()
		// Graceful drain, bounded: Shutdown alone waits forever on a
		// stream client that never closes (the SSE feed is endless by
		// design), so after -shutdown-timeout the remaining connections
		// are closed forcibly.
		shctx, cancel := context.WithTimeout(context.Background(), *shutdownT)
		defer cancel()
		if err := srv.Shutdown(shctx); err != nil {
			log.Printf("antarex-serve: graceful shutdown expired after %v: %v; closing open connections", *shutdownT, err)
			_ = srv.Close()
		}
	}()

	auth := "open"
	if *authToken != "" {
		auth = "bearer-token"
	}
	durability := "memory-only"
	if jlog != nil {
		durability = "journaled to " + *dataDir
	}
	log.Printf("antarex-serve: %d backend(s), placement %s, protocol %s, ingress %s, %s, control plane on %s",
		kernel.NumBackends(), *placement, kernel.Protocol(), auth, durability, *addr)
	err = srv.ListenAndServe()
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		kernel.Stop()
		log.Fatalf("antarex-serve: %v", err)
	}
	// Graceful path: HTTP drained; now quiesce the kernel, then the
	// journal (every acked mutation is already fsync-durable — Close
	// just releases the file).
	kernel.Stop()
	if jlog != nil {
		if err := jlog.Close(); err != nil {
			log.Printf("antarex-serve: close journal: %v", err)
		}
	}
	stats := kernel.ManagerStats()
	log.Printf("antarex-serve: stopped after %d epochs, %.1f GFLOP done, %.1f J, membership epoch %d",
		kernel.Epochs(), stats.WorkGFlop, stats.EnergyJ, kernel.Generation())
}
