// antarex-tune demonstrates the autotuning framework from the command
// line: it explores a kernel-configuration design space with the chosen
// strategy, prints the convergence trace (optionally with grey-box
// annotations enabled), then deploys the best point under the
// adaptation kernel's control loop and retunes online when the
// operating conditions drift.
//
// Usage:
//
//	antarex-tune -strategy random -budget 200
//	antarex-tune -strategy hillclimb -greybox
//	antarex-tune -strategy ucb -budget 300
//	antarex-tune -strategy exhaustive
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/autotune"
	"repro/internal/monitor"
	"repro/internal/runtime"
	"repro/internal/simhpc"
)

func main() {
	strategy := flag.String("strategy", "random", "exhaustive | random | hillclimb | annealing | ucb")
	budget := flag.Int("budget", 200, "evaluation budget for budgeted strategies")
	greybox := flag.Bool("greybox", false, "enable grey-box annotations (shrinks the space)")
	seed := flag.Uint64("seed", 1, "deterministic RNG seed")
	flag.Parse()

	space := autotune.NewSpace(
		autotune.IntKnob("block", 1, 16, 1),
		autotune.IntKnob("threads", 1, 32, 1),
		autotune.VariantKnob("variant", "scalar", "vectorized", "unrolled", "tiled"),
	)
	if *greybox {
		space.Constrain(func(p autotune.Point) bool {
			th := int(space.Knobs[1].Level(p[1]))
			return th&(th-1) == 0 // threads must be a power of two
		}).Constrain(func(p autotune.Point) bool {
			return p[2] == 1 || p[2] == 3 // only vectorized/tiled variants viable
		})
	}
	fmt.Printf("design space: %d points (raw %d)%s\n", space.Size(), space.RawSize(),
		map[bool]string{true: " [grey-box annotated]", false: ""}[*greybox])

	// Synthetic kernel cost surface: quadratic bowl + variant penalty.
	obj := func(cfg autotune.Config) autotune.Measurement {
		b := cfg["block"] - 8
		th := cfg["threads"] - 16
		v := 0.0
		if cfg["variant"] != 1 {
			v = 10
		}
		return autotune.Measurement{Cost: b*b + th*th/4 + v}
	}

	var strat autotune.Strategy
	switch *strategy {
	case "exhaustive":
		strat = &autotune.Exhaustive{}
	case "random":
		strat = &autotune.RandomSearch{Budget: *budget, Rng: simhpc.NewRNG(*seed)}
	case "hillclimb":
		strat = &autotune.HillClimb{Budget: *budget, Restarts: 4, Rng: simhpc.NewRNG(*seed)}
	case "annealing":
		strat = &autotune.Annealing{Budget: *budget, T0: 1, Alpha: 0.97, Rng: simhpc.NewRNG(*seed)}
	case "ucb":
		strat = &autotune.UCB{Budget: *budget, C: 0.5}
	default:
		fmt.Fprintf(os.Stderr, "antarex-tune: unknown strategy %q\n", *strategy)
		os.Exit(2)
	}

	tuner := autotune.NewTuner(space, strat, obj)
	best, m, err := tuner.Run(0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "antarex-tune:", err)
		os.Exit(1)
	}
	fmt.Printf("strategy %-10s evals %4d  best cost %.3f at %s\n",
		strat.Name(), len(tuner.History.Evals), m.Cost, space.Describe(best))
	fmt.Printf("evaluations to within 5%% of final best: %d\n", tuner.History.EvalsToWithin(0.05))

	// Convergence trace: running best every 10 evals.
	running := m.Cost + 1e18
	fmt.Println("convergence (eval: running best):")
	for i, e := range tuner.History.Evals {
		if e.M.Cost < running {
			running = e.M.Cost
		}
		if i%10 == 0 || i == len(tuner.History.Evals)-1 {
			fmt.Printf("  %4d: %.3f\n", i+1, running)
		}
	}

	// Online phase: deploy the best point under the adaptation kernel's
	// control loop. After 20 epochs the operating conditions drift — the
	// deployed configuration degrades in production (say, its cache
	// blocking no longer fits the hot problem size) — and the control
	// loop (monitor → TunerPolicy → knob) retunes from the knowledge
	// base onto a point the drift does not touch.
	fmt.Println("\nonline phase: production drift after epoch 20")
	inbox := &runtime.Inbox{}
	applied := space.At(tuner.Applied())
	deployedKey := tuner.Applied().Key()
	ctl := runtime.NewController(runtime.AppSpec{
		Name: "tune",
		SLA: monitor.SLA{Goals: []monitor.Goal{
			{Metric: monitor.MetricEnergy, Relation: monitor.AtMost, Target: m.Cost + 2},
		}},
		Window:   8,
		Debounce: 2,
		Sensor:   inbox,
		Policy:   &runtime.TunerPolicy{Tuner: tuner},
		Knob: runtime.KnobFunc(func(cfg autotune.Config) {
			applied = cfg
			fmt.Printf("  retuned to %s\n", space.Describe(tuner.Applied()))
		}),
	})
	for epoch := 0; epoch < 60; epoch++ {
		cost := obj(applied).Cost
		if epoch >= 20 && tuner.Applied().Key() == deployedKey {
			cost = cost*3 + 15 // drift: the deployed point degrades in production
		}
		tuner.Observe(cost)
		inbox.Push(monitor.MetricEnergy, cost)
		ctl.Tick()
	}
	fmt.Printf("online epochs %d, SLA fires %d, retunes %d, final %s\n",
		ctl.Ticks(), ctl.Fires(), ctl.Adaptations(), space.Describe(tuner.Applied()))
}
