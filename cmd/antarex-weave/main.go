// antarex-weave is the command-line front end of the ANTAREX weaver: it
// merges a miniC functional description with DSL aspect strategies and
// prints the woven source, optionally compiling and running a function
// to show the runtime effect.
//
// Usage:
//
//	antarex-weave -src app.c -aspects strategies.lara -aspect ProfileArguments -args kernel
//	antarex-weave -src app.c -aspects strategies.lara -aspect UnrollInnermostLoops -func init -args 8
//
// Arguments after -args are passed to the aspect as inputs; numeric
// tokens become numbers, everything else strings. With -func, the named
// function is bound as the aspect's first input (for Fig. 3-style
// aspects that take a $func).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/dsl/interp"
	"repro/internal/srcmodel"
	"repro/internal/weaver"
)

func main() {
	srcPath := flag.String("src", "", "miniC source file (required)")
	aspectsPath := flag.String("aspects", "", "DSL aspect file (required)")
	aspectName := flag.String("aspect", "", "aspect to weave (required)")
	funcName := flag.String("func", "", "bind this function join point as the aspect's first input")
	argsFlag := flag.String("args", "", "comma-separated aspect inputs (numbers or strings)")
	flag.Parse()

	if *srcPath == "" || *aspectsPath == "" || *aspectName == "" {
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(*srcPath)
	fatal(err)
	aspects, err := os.ReadFile(*aspectsPath)
	fatal(err)

	prog, err := srcmodel.Parse(*srcPath, string(src))
	fatal(err)
	w := weaver.New(prog)

	var args []interp.Value
	if *funcName != "" {
		jp := functionJP(w, *funcName)
		if jp == nil {
			fatal(fmt.Errorf("no function %q in %s", *funcName, *srcPath))
		}
		args = append(args, interp.JP(jp))
	}
	if *argsFlag != "" {
		for _, tok := range strings.Split(*argsFlag, ",") {
			tok = strings.TrimSpace(tok)
			if n, err := strconv.ParseFloat(tok, 64); err == nil {
				args = append(args, interp.Num(n))
			} else {
				args = append(args, interp.Str(tok))
			}
		}
	}

	if _, err := w.Weave(string(aspects), *aspectName, args...); err != nil {
		fatal(err)
	}
	fmt.Print(w.Source())
	if n := len(w.Dynamics); n > 0 {
		fmt.Fprintf(os.Stderr, "// %d dynamic apply block(s) registered (armed at runtime)\n", n)
	}
}

func functionJP(w *weaver.Weaver, name string) interp.JoinPoint {
	for _, jp := range w.Roots("function") {
		if jp.Name() == name {
			return jp
		}
	}
	return nil
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "antarex-weave:", err)
		os.Exit(1)
	}
}
