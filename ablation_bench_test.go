package repro

import (
	"fmt"
	"testing"

	"repro/internal/autotune"
	"repro/internal/ir"
	"repro/internal/rtrm"
	"repro/internal/simhpc"
	"repro/internal/srcmodel"
)

// Ablation benchmarks for the design choices DESIGN.md calls out: how
// much each mechanism contributes, and where the knobs saturate.

// BenchmarkAblationUnrollFactor sweeps partial unroll factors on a
// 64-iteration kernel: the loop-overhead amortization saturates well
// before full unrolling, motivating the weaver's threshold form.
func BenchmarkAblationUnrollFactor(b *testing.B) {
	src := `
double k64(double* a) {
    double s = 0.0;
    for (int i = 0; i < 64; i++) {
        s = s + a[i] * a[i];
    }
    return s;
}
`
	for _, factor := range []int64{1, 2, 4, 8, 16, 64} {
		b.Run(fmt.Sprintf("factor=%d", factor), func(b *testing.B) {
			prog, err := srcmodel.Parse("k.c", src)
			if err != nil {
				b.Fatal(err)
			}
			srcmodel.NormalizeBodies(prog)
			if factor > 1 {
				loops := srcmodel.Loops(prog.Func("k64"))
				if factor == 64 {
					if err := srcmodel.UnrollLoop(loops[0]); err != nil {
						b.Fatal(err)
					}
				} else if err := srcmodel.UnrollLoopBy(loops[0], factor); err != nil {
					b.Fatal(err)
				}
			}
			mod, err := ir.Compile(prog)
			if err != nil {
				b.Fatal(err)
			}
			vm := ir.NewVM(mod)
			buf := benchBuf(64)
			want, err := vm.Call("k64", ir.PtrValue(buf))
			if err != nil {
				b.Fatal(err)
			}
			start := vm.Cycles
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				got, err := vm.Call("k64", ir.PtrValue(buf))
				if err != nil {
					b.Fatal(err)
				}
				if got.Num != want.Num {
					b.Fatalf("unroll changed semantics: %v != %v", got.Num, want.Num)
				}
			}
			b.ReportMetric(float64(vm.Cycles-start)/float64(b.N), "simcycles/call")
		})
	}
}

// BenchmarkAblationStrategies races the five search strategies on the
// same design space and budget.
func BenchmarkAblationStrategies(b *testing.B) {
	obj := func(cfg autotune.Config) autotune.Measurement {
		bk := cfg["block"] - 8
		th := cfg["threads"] - 16
		v := 0.0
		if cfg["variant"] != 1 {
			v = 10
		}
		return autotune.Measurement{Cost: bk*bk + th*th/4 + v}
	}
	mk := func() *autotune.Space {
		return autotune.NewSpace(
			autotune.IntKnob("block", 1, 16, 1),
			autotune.IntKnob("threads", 1, 32, 1),
			autotune.VariantKnob("variant", "scalar", "vectorized", "unrolled", "tiled"),
		)
	}
	strategies := []struct {
		name string
		mk   func() autotune.Strategy
	}{
		{"random", func() autotune.Strategy { return &autotune.RandomSearch{Budget: 200, Rng: simhpc.NewRNG(1)} }},
		{"hillclimb", func() autotune.Strategy { return &autotune.HillClimb{Budget: 200, Restarts: 4, Rng: simhpc.NewRNG(1)} }},
		{"annealing", func() autotune.Strategy {
			return &autotune.Annealing{Budget: 200, T0: 1, Alpha: 0.97, Rng: simhpc.NewRNG(1)}
		}},
		{"ucb", func() autotune.Strategy { return &autotune.UCB{Budget: 200, C: 0.5} }},
	}
	for _, s := range strategies {
		b.Run(s.name, func(b *testing.B) {
			var best float64
			var evalsToGood int
			for i := 0; i < b.N; i++ {
				tu := autotune.NewTuner(mk(), s.mk(), obj)
				_, m, err := tu.Run(0)
				if err != nil {
					b.Fatal(err)
				}
				best = m.Cost
				evalsToGood = tu.History.EvalsToWithin(0.05)
			}
			b.ReportMetric(best, "best_cost")
			b.ReportMetric(float64(evalsToGood), "evals_to_5pct")
		})
	}
}

// BenchmarkAblationDispatch compares job-dispatch policies on the same
// trace over the variability-afflicted cluster.
func BenchmarkAblationDispatch(b *testing.B) {
	mkCluster := func() *simhpc.Cluster {
		rng := simhpc.NewRNG(51)
		return simhpc.NewCluster(16, 20, func(int) *simhpc.Node {
			return simhpc.HomogeneousNode("n", 0.15, rng)
		})
	}
	mkJobs := func() []rtrm.BatchJob {
		return rtrm.RandomJobMix(120, 16, simhpc.NewRNG(3))
	}
	for _, policy := range []rtrm.DispatchPolicy{rtrm.FCFS, rtrm.EASY, rtrm.EnergyAwareEASY} {
		b.Run(policy.String(), func(b *testing.B) {
			var res rtrm.DispatchResult
			for i := 0; i < b.N; i++ {
				res = rtrm.Dispatch(policy, mkCluster(), mkJobs())
			}
			b.ReportMetric(res.MeanWaitS, "mean_wait_s")
			b.ReportMetric(res.Utilization*100, "utilization_%")
			b.ReportMetric(res.EnergyJ/1e6, "energy_MJ")
			b.Logf("dispatch ablation: %s", res)
		})
	}
}

// BenchmarkAblationParetoOperatingPoints builds the DVFS operating-point
// frontier for the three workload classes and reports its size and the
// SLA-picked points — the mARGOt-style operating-point list.
func BenchmarkAblationParetoOperatingPoints(b *testing.B) {
	gen := simhpc.NewWorkloadGen(7)
	classes := []struct {
		name string
		task *simhpc.Task
	}{
		{"memory-bound", gen.MemoryBound(100)},
		{"balanced", gen.Balanced(100)},
		{"compute-bound", gen.ComputeBound(100)},
	}
	for _, c := range classes {
		b.Run(c.name, func(b *testing.B) {
			d := simhpc.NewDevice(simhpc.XeonCPUSpec(), "d", 0, nil)
			space := autotune.NewSpace(autotune.IntKnob("pstate", 0, 7, 1))
			var front *autotune.ParetoFront
			for i := 0; i < b.N; i++ {
				front = autotune.ExploreFront(space, func(cfg autotune.Config) autotune.MultiMeasurement {
					ps := int(cfg["pstate"])
					return autotune.MultiMeasurement{Objectives: map[string]float64{
						"time":   d.ExecTime(c.task, ps),
						"energy": d.ExecEnergy(c.task, ps),
					}}
				})
			}
			b.ReportMetric(float64(front.Size()), "front_size")
			tMax := d.ExecTime(c.task, d.Spec.MaxPState())
			if pick, ok := front.PickUnder("energy", "time", 1.3*tMax); ok {
				b.ReportMetric(pick.M.Objectives["energy"], "energy_at_1.3x_deadline")
			}
			b.Logf("pareto %s: %d operating points on the frontier", c.name, front.Size())
		})
	}
}

// BenchmarkAblationVariabilitySpread sweeps the manufacturing
// variability parameter to show how the energy-aware dispatcher's
// advantage scales with part spread.
func BenchmarkAblationVariabilitySpread(b *testing.B) {
	for _, spread := range []float64{0, 0.05, 0.15, 0.30} {
		b.Run(fmt.Sprintf("spread=%.0f%%", spread*100), func(b *testing.B) {
			var gain float64
			for i := 0; i < b.N; i++ {
				mk := func() *simhpc.Cluster {
					rng := simhpc.NewRNG(51)
					return simhpc.NewCluster(16, 20, func(int) *simhpc.Node {
						return simhpc.HomogeneousNode("n", spread, rng)
					})
				}
				jobs := rtrm.RandomJobMix(120, 16, simhpc.NewRNG(3))
				easy := rtrm.Dispatch(rtrm.EASY, mk(), jobs)
				aware := rtrm.Dispatch(rtrm.EnergyAwareEASY, mk(), jobs)
				gain = 1 - aware.EnergyJ/easy.EnergyJ
			}
			b.ReportMetric(gain*100, "energy_gain_%")
		})
	}
}
